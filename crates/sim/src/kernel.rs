//! Intrinsic kernel characteristics, independent of hardware configuration.
//!
//! A [`KernelCharacteristics`] value describes *what the kernel is* — how
//! much arithmetic it performs, how much data it touches, how well it caches
//! and parallelizes. The simulator combines these with an
//! [`HwConfig`](gpm_hw::HwConfig) to produce time, power, and counters.
//!
//! Constructors are provided for the four scaling classes the paper
//! characterizes in Figure 2 (compute-bound, memory-bound, peak,
//! unscalable), plus a builder for fully custom kernels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four GPGPU kernel scaling classes of Figure 2.
///
/// The class is a *descriptive label*; the simulator only consumes the
/// numeric fields of [`KernelCharacteristics`]. Classifying helps tests and
/// workload definitions state intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Scales with CU count and GPU frequency; insensitive to NB state.
    /// Energy-optimal at many CUs and a low NB state (Fig. 2(a)).
    ComputeBound,
    /// Scales with memory bandwidth; saturates from NB2 onward because
    /// NB2–NB0 share the 800 MHz DRAM clock (Fig. 2(b)).
    MemoryBound,
    /// Performance *peaks* below the maximum CU count due to destructive
    /// shared-cache interference (Fig. 2(c)).
    Peak,
    /// Performance insensitive to hardware configuration; energy-optimal at
    /// the lowest GPU configuration (Fig. 2(d)).
    Unscalable,
    /// Mixed compute/memory behaviour.
    Balanced,
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelClass::ComputeBound => "compute-bound",
            KernelClass::MemoryBound => "memory-bound",
            KernelClass::Peak => "peak",
            KernelClass::Unscalable => "unscalable",
            KernelClass::Balanced => "balanced",
        };
        f.write_str(s)
    }
}

/// Hardware-independent description of a GPU kernel invocation.
///
/// All totals are per *invocation*; a kernel invoked with a different input
/// is represented by a different `KernelCharacteristics` value (as in
/// hybridsort's `mergeSortPass` F1–F9).
///
/// # Examples
///
/// ```
/// use gpm_sim::KernelCharacteristics;
///
/// let k = KernelCharacteristics::builder("spmv_csr", 4.0)
///     .memory_gb(1.2)
///     .cache_hit(0.35)
///     .parallel_fraction(0.95)
///     .build();
/// assert_eq!(k.name(), "spmv_csr");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCharacteristics {
    name: String,
    class: KernelClass,
    /// Total vector-ALU work, in giga-operations per invocation.
    compute_gops: f64,
    /// Total data touched by the memory hierarchy, in GB per invocation.
    memory_gb: f64,
    /// Cache hit rate at the 2-CU baseline, in [0, 1].
    cache_hit_base: f64,
    /// Cache hit-rate loss per additional active CU beyond 2 (destructive
    /// interference; > 0 only for "peak" kernels).
    cache_interference: f64,
    /// Amdahl parallel fraction across CUs, in [0, 1].
    parallel_fraction: f64,
    /// Fraction of peak per-CU issue rate the kernel sustains, in (0, 1].
    occupancy: f64,
    /// Hardware-independent serial latency per invocation (driver,
    /// dependent launches, host synchronization), in seconds.
    fixed_time_s: f64,
    /// Kernel launch overhead, in seconds.
    launch_overhead_s: f64,
    /// Work-items in the global NDRange (the `GlobalWorkSize` counter).
    global_work_size: f64,
    /// Fraction of LDS accesses that bank-conflict, in [0, 1].
    lds_conflict: f64,
    /// Scratch registers used per work-item.
    scratch_regs: f64,
    /// Instructions counted toward the throughput metric of Eq. 1
    /// (thread-count × instructions per thread), in giga-instructions.
    ginstructions: f64,
}

impl KernelCharacteristics {
    /// Starts building a kernel with the given name and total ALU work in
    /// giga-operations. All other fields start from balanced defaults.
    pub fn builder(name: impl Into<String>, compute_gops: f64) -> KernelBuilder {
        KernelBuilder {
            inner: KernelCharacteristics {
                name: name.into(),
                class: KernelClass::Balanced,
                compute_gops: compute_gops.max(1e-9),
                memory_gb: 0.1,
                cache_hit_base: 0.6,
                cache_interference: 0.0,
                parallel_fraction: 0.95,
                occupancy: 0.7,
                fixed_time_s: 0.0,
                launch_overhead_s: 30e-6,
                global_work_size: (1u32 << 20) as f64,
                lds_conflict: 0.05,
                scratch_regs: 8.0,
                ginstructions: 0.0,
            },
        }
    }

    /// A compute-bound kernel in the style of SHOC's `MaxFlops`
    /// (Fig. 2(a)): almost perfectly parallel, tiny memory footprint.
    pub fn compute_bound(name: impl Into<String>, compute_gops: f64) -> KernelCharacteristics {
        KernelCharacteristics::builder(name, compute_gops)
            .class(KernelClass::ComputeBound)
            .memory_gb(compute_gops * 0.002)
            .cache_hit(0.92)
            .parallel_fraction(0.99)
            .occupancy(0.9)
            .build()
    }

    /// A memory-bound kernel in the style of
    /// `readGlobalMemoryCoalesced` (Fig. 2(b)): streams far more bytes than
    /// it computes.
    pub fn memory_bound(name: impl Into<String>, memory_gb: f64) -> KernelCharacteristics {
        KernelCharacteristics::builder(name, memory_gb * 2.0)
            .class(KernelClass::MemoryBound)
            .memory_gb(memory_gb)
            .cache_hit(0.15)
            .parallel_fraction(0.97)
            .occupancy(0.5)
            .build()
    }

    /// A "peak" kernel in the style of `writeCandidates` (Fig. 2(c)):
    /// performance and energy optima below the maximum CU count because
    /// additional CUs destroy shared-cache locality.
    pub fn peak(name: impl Into<String>, compute_gops: f64) -> KernelCharacteristics {
        KernelCharacteristics::builder(name, compute_gops)
            .class(KernelClass::Peak)
            .memory_gb(compute_gops * 0.15)
            .cache_hit(0.95)
            .cache_interference(0.09)
            .parallel_fraction(0.985)
            .occupancy(0.8)
            .build()
    }

    /// An unscalable kernel in the style of `astar` (Fig. 2(d)):
    /// serial-latency dominated, insensitive to hardware configuration.
    pub fn unscalable(name: impl Into<String>, fixed_time_s: f64) -> KernelCharacteristics {
        KernelCharacteristics::builder(name, 0.05)
            .class(KernelClass::Unscalable)
            .memory_gb(0.01)
            .cache_hit(0.7)
            .parallel_fraction(0.3)
            .occupancy(0.15)
            .fixed_time(fixed_time_s)
            .build()
    }

    /// Kernel name (stable identifier within a workload).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Descriptive scaling class.
    pub fn class(&self) -> KernelClass {
        self.class
    }

    /// Total ALU work in giga-operations.
    pub fn compute_gops(&self) -> f64 {
        self.compute_gops
    }

    /// Total memory traffic presented to the cache hierarchy, in GB.
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Cache hit rate at the 2-CU baseline.
    pub fn cache_hit_base(&self) -> f64 {
        self.cache_hit_base
    }

    /// Cache hit-rate loss per additional CU beyond 2.
    pub fn cache_interference(&self) -> f64 {
        self.cache_interference
    }

    /// Amdahl parallel fraction.
    pub fn parallel_fraction(&self) -> f64 {
        self.parallel_fraction
    }

    /// Sustained fraction of peak per-CU issue rate.
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// Hardware-independent serial latency per invocation, seconds.
    pub fn fixed_time_s(&self) -> f64 {
        self.fixed_time_s
    }

    /// Launch overhead, seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_s
    }

    /// Work-items in the global NDRange.
    pub fn global_work_size(&self) -> f64 {
        self.global_work_size
    }

    /// LDS bank-conflict fraction.
    pub fn lds_conflict(&self) -> f64 {
        self.lds_conflict
    }

    /// Scratch registers per work-item.
    pub fn scratch_regs(&self) -> f64 {
        self.scratch_regs
    }

    /// Instructions counted toward the Eq. 1 throughput metric, in
    /// giga-instructions. Defaults to `compute_gops` when not set
    /// explicitly.
    pub fn ginstructions(&self) -> f64 {
        if self.ginstructions > 0.0 {
            self.ginstructions
        } else {
            self.compute_gops
        }
    }

    /// Effective cache hit rate with `cu` active compute units.
    ///
    /// Decreases linearly with CU count for kernels with positive
    /// [`cache_interference`](Self::cache_interference), clamped to [0, 1].
    pub fn cache_hit_at(&self, cu: u32) -> f64 {
        (self.cache_hit_base - self.cache_interference * f64::from(cu.saturating_sub(2)))
            .clamp(0.0, 1.0)
    }

    /// Returns a copy scaled to represent the same kernel run on an input
    /// `factor`× larger.
    ///
    /// Totals (work, traffic, NDRange, instructions) scale linearly.
    /// Execution *character* shifts too, as it does on real hardware:
    /// larger inputs overflow caches (`cache_hit ∝ factor^-0.15`) while
    /// smaller inputs under-occupy the machine (`occupancy ∝ factor^0.2`,
    /// capped at the original). This is what makes input-varying kernels
    /// (Table IV's fourth category) genuinely mispredictable for schemes
    /// that assume the previous invocation repeats.
    pub fn with_input_scale(&self, factor: f64) -> KernelCharacteristics {
        let factor = factor.max(1e-6);
        let mut k = self.clone();
        k.compute_gops *= factor;
        k.memory_gb *= factor;
        k.global_work_size *= factor;
        if k.ginstructions > 0.0 {
            k.ginstructions *= factor;
        }
        k.cache_hit_base = (k.cache_hit_base * factor.powf(-0.15)).clamp(0.0, 1.0);
        k.occupancy = (k.occupancy * factor.powf(0.2)).clamp(0.01, self.occupancy.max(0.01));
        k
    }

    /// Returns a renamed copy (used when one source kernel appears under
    /// several invocation identities, e.g. `F1`–`F9` in hybridsort).
    pub fn renamed(&self, name: impl Into<String>) -> KernelCharacteristics {
        let mut k = self.clone();
        k.name = name.into();
        k
    }
}

impl fmt::Display for KernelCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {:.2} Gop, {:.3} GB)",
            self.name, self.class, self.compute_gops, self.memory_gb
        )
    }
}

/// Builder for [`KernelCharacteristics`].
///
/// Created with [`KernelCharacteristics::builder`]. Out-of-range inputs are
/// clamped to their documented domains at [`build`](KernelBuilder::build)
/// time.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    inner: KernelCharacteristics,
}

impl KernelBuilder {
    /// Sets the descriptive scaling class.
    pub fn class(mut self, class: KernelClass) -> KernelBuilder {
        self.inner.class = class;
        self
    }

    /// Sets total memory traffic in GB.
    pub fn memory_gb(mut self, gb: f64) -> KernelBuilder {
        self.inner.memory_gb = gb;
        self
    }

    /// Sets the baseline cache hit rate in [0, 1].
    pub fn cache_hit(mut self, hit: f64) -> KernelBuilder {
        self.inner.cache_hit_base = hit;
        self
    }

    /// Sets cache hit-rate loss per additional CU.
    pub fn cache_interference(mut self, per_cu: f64) -> KernelBuilder {
        self.inner.cache_interference = per_cu;
        self
    }

    /// Sets the Amdahl parallel fraction in [0, 1].
    pub fn parallel_fraction(mut self, p: f64) -> KernelBuilder {
        self.inner.parallel_fraction = p;
        self
    }

    /// Sets sustained occupancy in (0, 1].
    pub fn occupancy(mut self, occ: f64) -> KernelBuilder {
        self.inner.occupancy = occ;
        self
    }

    /// Sets hardware-independent serial latency in seconds.
    pub fn fixed_time(mut self, s: f64) -> KernelBuilder {
        self.inner.fixed_time_s = s;
        self
    }

    /// Sets launch overhead in seconds.
    pub fn launch_overhead(mut self, s: f64) -> KernelBuilder {
        self.inner.launch_overhead_s = s;
        self
    }

    /// Sets the global NDRange size.
    pub fn global_work_size(mut self, items: f64) -> KernelBuilder {
        self.inner.global_work_size = items;
        self
    }

    /// Sets the LDS bank-conflict fraction in [0, 1].
    pub fn lds_conflict(mut self, frac: f64) -> KernelBuilder {
        self.inner.lds_conflict = frac;
        self
    }

    /// Sets scratch registers per work-item.
    pub fn scratch_regs(mut self, regs: f64) -> KernelBuilder {
        self.inner.scratch_regs = regs;
        self
    }

    /// Sets the instruction count for the throughput metric, in
    /// giga-instructions.
    pub fn ginstructions(mut self, gi: f64) -> KernelBuilder {
        self.inner.ginstructions = gi;
        self
    }

    /// Finishes the builder, clamping every field to its documented domain.
    pub fn build(self) -> KernelCharacteristics {
        let mut k = self.inner;
        k.compute_gops = k.compute_gops.max(1e-9);
        k.memory_gb = k.memory_gb.max(0.0);
        k.cache_hit_base = k.cache_hit_base.clamp(0.0, 1.0);
        k.cache_interference = k.cache_interference.max(0.0);
        k.parallel_fraction = k.parallel_fraction.clamp(0.0, 1.0);
        k.occupancy = k.occupancy.clamp(0.01, 1.0);
        k.fixed_time_s = k.fixed_time_s.max(0.0);
        k.launch_overhead_s = k.launch_overhead_s.max(0.0);
        k.global_work_size = k.global_work_size.max(1.0);
        k.lds_conflict = k.lds_conflict.clamp(0.0, 1.0);
        k.scratch_regs = k.scratch_regs.max(0.0);
        k.ginstructions = k.ginstructions.max(0.0);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let k = KernelCharacteristics::builder("k", 10.0).build();
        assert_eq!(k.name(), "k");
        assert_eq!(k.class(), KernelClass::Balanced);
        assert!(k.parallel_fraction() > 0.0 && k.parallel_fraction() <= 1.0);
        assert!(k.occupancy() > 0.0);
    }

    #[test]
    fn builder_clamps_out_of_range() {
        let k = KernelCharacteristics::builder("k", -5.0)
            .cache_hit(1.5)
            .parallel_fraction(-0.2)
            .occupancy(0.0)
            .memory_gb(-1.0)
            .lds_conflict(2.0)
            .build();
        assert!(k.compute_gops() > 0.0);
        assert_eq!(k.cache_hit_base(), 1.0);
        assert_eq!(k.parallel_fraction(), 0.0);
        assert!(k.occupancy() > 0.0);
        assert_eq!(k.memory_gb(), 0.0);
        assert_eq!(k.lds_conflict(), 1.0);
    }

    #[test]
    fn class_constructors_set_class() {
        assert_eq!(
            KernelCharacteristics::compute_bound("a", 1.0).class(),
            KernelClass::ComputeBound
        );
        assert_eq!(
            KernelCharacteristics::memory_bound("b", 1.0).class(),
            KernelClass::MemoryBound
        );
        assert_eq!(
            KernelCharacteristics::peak("c", 1.0).class(),
            KernelClass::Peak
        );
        assert_eq!(
            KernelCharacteristics::unscalable("d", 0.01).class(),
            KernelClass::Unscalable
        );
    }

    #[test]
    fn cache_hit_degrades_with_cus_only_for_peak() {
        let peak = KernelCharacteristics::peak("p", 10.0);
        assert!(peak.cache_hit_at(8) < peak.cache_hit_at(2));
        let cb = KernelCharacteristics::compute_bound("c", 10.0);
        assert_eq!(cb.cache_hit_at(8), cb.cache_hit_at(2));
    }

    #[test]
    fn cache_hit_clamped_at_zero() {
        let k = KernelCharacteristics::builder("k", 1.0)
            .cache_hit(0.1)
            .cache_interference(0.5)
            .build();
        assert_eq!(k.cache_hit_at(8), 0.0);
    }

    #[test]
    fn input_scale_scales_totals_linearly() {
        let k = KernelCharacteristics::memory_bound("m", 2.0);
        let big = k.with_input_scale(3.0);
        assert!((big.memory_gb() - 6.0).abs() < 1e-12);
        assert!((big.compute_gops() - k.compute_gops() * 3.0).abs() < 1e-12);
        assert!((big.global_work_size() - k.global_work_size() * 3.0).abs() < 1e-6);
    }

    #[test]
    fn input_scale_shifts_execution_character() {
        let k = KernelCharacteristics::peak("p", 10.0);
        // Bigger input: worse caching, same (capped) occupancy.
        let big = k.with_input_scale(4.0);
        assert!(big.cache_hit_base() < k.cache_hit_base());
        assert_eq!(big.occupancy(), k.occupancy());
        // Smaller input: better caching, lower occupancy.
        let small = k.with_input_scale(0.25);
        assert!(small.cache_hit_base() >= k.cache_hit_base());
        assert!(small.occupancy() < k.occupancy());
        // Identity at factor 1.
        let same = k.with_input_scale(1.0);
        assert!((same.cache_hit_base() - k.cache_hit_base()).abs() < 1e-12);
        assert!((same.occupancy() - k.occupancy()).abs() < 1e-12);
    }

    #[test]
    fn ginstructions_defaults_to_compute() {
        let k = KernelCharacteristics::builder("k", 7.0).build();
        assert_eq!(k.ginstructions(), 7.0);
        let k = KernelCharacteristics::builder("k", 7.0)
            .ginstructions(3.0)
            .build();
        assert_eq!(k.ginstructions(), 3.0);
    }

    #[test]
    fn renamed_only_changes_name() {
        let k = KernelCharacteristics::peak("orig", 5.0);
        let r = k.renamed("copy");
        assert_eq!(r.name(), "copy");
        assert_eq!(r.compute_gops(), k.compute_gops());
        assert_eq!(r.class(), k.class());
    }

    #[test]
    fn display_contains_name_and_class() {
        let k = KernelCharacteristics::unscalable("astar", 0.02);
        let s = k.to_string();
        assert!(s.contains("astar") && s.contains("unscalable"));
    }
}
