//! The power/performance prediction interface consumed by optimizers.
//!
//! The paper's optimizer asks one question: *"if kernel `k` (known through
//! its stored performance counters) runs at configuration `s`, what will
//! its execution time and GPU power be?"* (Section IV-A3). Different
//! answers plug in behind [`PowerPerfPredictor`]:
//!
//! * [`OraclePredictor`] — perfect prediction straight from the noiseless
//!   simulator; used by the limit studies (Figures 4 and 12).
//! * `RandomForestPredictor` (in `gpm-model`) — the paper's offline-trained
//!   Random Forest.
//! * `ErrorInjectedPredictor` (in `gpm-model`) — oracle plus half-normal
//!   error, reproducing Figure 13's Err_15%_10% / Err_5% / Err_0% models.
//!
//! CPU power is *not* part of the prediction: the paper models it with a
//! normalized `V²f` formula because the CPU busy-waits; governors obtain it
//! from [`ApuSimulator::cpu_busywait_power`].

use crate::apu::ApuSimulator;
use crate::counters::CounterSet;
use crate::kernel::KernelCharacteristics;
use gpm_hw::HwConfig;
use serde::{Deserialize, Serialize};

/// What a predictor knows about a kernel when asked to extrapolate it to a
/// new configuration: its stored counters (captured at the configuration it
/// last executed at) and, for oracle predictors only, the ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSnapshot {
    /// Table III counters captured at `measured_at`.
    pub counters: CounterSet,
    /// Configuration the counters were captured at.
    pub measured_at: HwConfig,
    /// Instruction count for the throughput metric, giga-instructions.
    pub ginstructions: f64,
    /// Ground-truth characteristics; `None` for purely counter-driven
    /// predictors. Oracle predictors require it.
    pub truth: Option<KernelCharacteristics>,
}

impl KernelSnapshot {
    /// Snapshot with ground truth attached (for oracle predictors).
    pub fn with_truth(
        counters: CounterSet,
        measured_at: HwConfig,
        truth: KernelCharacteristics,
    ) -> KernelSnapshot {
        KernelSnapshot {
            counters,
            measured_at,
            ginstructions: truth.ginstructions(),
            truth: Some(truth),
        }
    }

    /// Whether the snapshot can safely drive a predictor: every counter
    /// finite and non-negative, instruction count finite and non-negative.
    /// Corrupted (e.g. fault-injected) records fail this check and must be
    /// discarded rather than extrapolated from.
    pub fn is_well_formed(&self) -> bool {
        self.counters.is_well_formed()
            && self.ginstructions.is_finite()
            && self.ginstructions >= 0.0
    }

    /// Counter-only snapshot (for model-driven predictors).
    pub fn counters_only(
        counters: CounterSet,
        measured_at: HwConfig,
        ginstructions: f64,
    ) -> KernelSnapshot {
        KernelSnapshot {
            counters,
            measured_at,
            ginstructions,
            truth: None,
        }
    }
}

/// A predicted (time, GPU power) pair for one kernel at one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerPerfEstimate {
    /// Predicted kernel execution time, seconds.
    pub time_s: f64,
    /// Predicted GPU-domain power (GPU + NB, as measured on the shared
    /// rail), watts.
    pub gpu_power_w: f64,
}

impl PowerPerfEstimate {
    /// GPU-domain energy implied by the estimate, joules.
    pub fn gpu_energy_j(&self) -> f64 {
        self.time_s * self.gpu_power_w
    }
}

/// Predicts kernel time and GPU power at an arbitrary configuration.
///
/// Implementations must be deterministic: optimizers evaluate the same
/// (snapshot, config) pair repeatedly while hill climbing and rely on
/// consistent answers.
pub trait PowerPerfPredictor {
    /// Predicts behaviour of the kernel described by `snapshot` at `cfg`.
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate;

    /// Predicts one snapshot at every candidate in `cfgs`, writing the
    /// estimates into `out` (cleared and refilled, index-aligned with
    /// `cfgs`; the allocation is reused across calls).
    ///
    /// The default implementation loops [`predict`](Self::predict);
    /// batched implementations (the Random-Forest engine) override it but
    /// **must** return values bit-identical to the loop — optimizers treat
    /// the two paths as interchangeable.
    fn predict_batch(
        &self,
        snapshot: &KernelSnapshot,
        cfgs: &[HwConfig],
        out: &mut Vec<PowerPerfEstimate>,
    ) {
        out.clear();
        out.extend(cfgs.iter().map(|&cfg| self.predict(snapshot, cfg)));
    }

    /// Human-readable predictor name for reports.
    fn name(&self) -> &str {
        "predictor"
    }
}

impl<P: PowerPerfPredictor + ?Sized> PowerPerfPredictor for &P {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        (**self).predict(snapshot, cfg)
    }

    fn predict_batch(
        &self,
        snapshot: &KernelSnapshot,
        cfgs: &[HwConfig],
        out: &mut Vec<PowerPerfEstimate>,
    ) {
        (**self).predict_batch(snapshot, cfgs, out);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: PowerPerfPredictor + ?Sized> PowerPerfPredictor for Box<P> {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        (**self).predict(snapshot, cfg)
    }

    fn predict_batch(
        &self,
        snapshot: &KernelSnapshot,
        cfgs: &[HwConfig],
        out: &mut Vec<PowerPerfEstimate>,
    ) {
        (**self).predict_batch(snapshot, cfgs, out);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Perfect prediction from the noiseless analytical model.
///
/// Requires snapshots carrying ground truth; used by the paper's limit
/// studies where PPK/TO "have perfect knowledge of the effect of every
/// hardware configuration" (Section II-E).
///
/// # Panics
///
/// [`predict`](PowerPerfPredictor::predict) panics if the snapshot has no
/// ground truth attached — an oracle without truth is a programming error,
/// not a recoverable condition.
#[derive(Debug, Clone, Default)]
pub struct OraclePredictor {
    sim: ApuSimulator,
}

impl OraclePredictor {
    /// Oracle backed by a noiseless copy of the given simulator's
    /// parameters.
    pub fn new(sim: &ApuSimulator) -> OraclePredictor {
        let mut params = sim.params().clone();
        params.noise_rel_std = 0.0;
        OraclePredictor {
            sim: ApuSimulator::new(params),
        }
    }
}

impl PowerPerfPredictor for OraclePredictor {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        let truth = snapshot
            .truth
            .as_ref()
            .expect("OraclePredictor requires snapshots with ground truth");
        let out = self.sim.evaluate_exact(truth, cfg);
        PowerPerfEstimate {
            time_s: out.time_s,
            gpu_power_w: out.power.gpu_domain_w(),
        }
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::HwConfig;

    fn snapshot() -> KernelSnapshot {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
        KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k)
    }

    #[test]
    fn oracle_matches_simulator_exactly() {
        let sim = ApuSimulator::default();
        let oracle = OraclePredictor::new(&sim);
        let snap = snapshot();
        let exact = ApuSimulator::noiseless()
            .evaluate_exact(snap.truth.as_ref().unwrap(), HwConfig::MAX_PERF);
        let est = oracle.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(est.time_s, exact.time_s);
        assert_eq!(est.gpu_power_w, exact.power.gpu_domain_w());
    }

    #[test]
    fn oracle_strips_noise_from_sim_params() {
        let sim = ApuSimulator::default();
        assert!(sim.params().noise_rel_std > 0.0);
        let oracle = OraclePredictor::new(&sim);
        let snap = snapshot();
        let a = oracle.predict(&snap, HwConfig::MAX_PERF);
        let b = oracle.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ground truth")]
    fn oracle_panics_without_truth() {
        let oracle = OraclePredictor::default();
        let snap = KernelSnapshot::counters_only(CounterSet::default(), HwConfig::FAIL_SAFE, 1.0);
        let _ = oracle.predict(&snap, HwConfig::MAX_PERF);
    }

    #[test]
    fn estimate_energy_is_product() {
        let est = PowerPerfEstimate {
            time_s: 2.0,
            gpu_power_w: 30.0,
        };
        assert_eq!(est.gpu_energy_j(), 60.0);
    }

    #[test]
    fn default_batch_matches_looped_predict() {
        let sim = ApuSimulator::default();
        let oracle = OraclePredictor::new(&sim);
        let snap = snapshot();
        let cfgs = [HwConfig::FAIL_SAFE, HwConfig::MAX_PERF];
        let mut out = Vec::new();
        oracle.predict_batch(&snap, &cfgs, &mut out);
        assert_eq!(out.len(), cfgs.len());
        for (est, &cfg) in out.iter().zip(&cfgs) {
            assert_eq!(*est, oracle.predict(&snap, cfg));
        }
        // Forwarding impls route through the same batch entry point.
        let boxed: Box<dyn PowerPerfPredictor> = Box::new(oracle);
        let mut via_box = Vec::new();
        boxed.predict_batch(&snap, &cfgs, &mut via_box);
        assert_eq!(via_box, out);
    }

    #[test]
    fn trait_object_and_ref_forwarding() {
        let sim = ApuSimulator::default();
        let oracle = OraclePredictor::new(&sim);
        let snap = snapshot();
        let direct = oracle.predict(&snap, HwConfig::MAX_PERF);
        let via_ref = oracle.predict(&snap, HwConfig::MAX_PERF);
        let boxed: Box<dyn PowerPerfPredictor> = Box::new(oracle.clone());
        let via_box = boxed.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(direct, via_ref);
        assert_eq!(direct, via_box);
        assert_eq!(boxed.name(), "oracle");
    }
}
