//! Kernel execution-time model.
//!
//! A roofline-style model with explicit compute and memory phases:
//!
//! * **Compute phase** — total ALU work divided by the aggregate issue rate
//!   of the active CUs, with Amdahl-style scaling across CUs and an LDS
//!   bank-conflict penalty.
//! * **Memory phase** — DRAM traffic (after cache filtering, including the
//!   CU-dependent interference of "peak" kernels) divided by the effective
//!   memory bandwidth, which is the minimum of the DRAM peak (set by the NB
//!   state's memory clock) and the NB link bandwidth (set by the NB clock).
//!   Cache-served traffic pays an L2 term that scales with CU count and GPU
//!   clock.
//!
//! The phases partially overlap: the kernel's busy time is the longer phase
//! plus a fixed fraction of the shorter one. Launch overhead and any
//! hardware-independent serial latency are added on top.

use crate::kernel::KernelCharacteristics;
use crate::params::SimParams;
use gpm_hw::{CpuPState, HwConfig};
use serde::{Deserialize, Serialize};

/// Decomposition of a kernel invocation's execution time.
///
/// Produced by [`execution_time`]; all fields in seconds except the two
/// utilization fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Pure compute-phase time.
    pub compute_s: f64,
    /// Pure memory-phase time (DRAM + L2).
    pub memory_s: f64,
    /// Hardware-independent serial latency.
    pub fixed_s: f64,
    /// Kernel launch overhead.
    pub launch_s: f64,
    /// End-to-end invocation time.
    pub total_s: f64,
    /// Fraction of the busy period the vector ALUs are active, in [0, 1].
    pub alu_activity: f64,
    /// Fraction of peak DRAM bandwidth consumed over the whole invocation,
    /// in [0, 1].
    pub mem_util: f64,
    /// DRAM traffic actually transferred, in GB.
    pub dram_traffic_gb: f64,
}

/// Effective memory bandwidth in GB/s at configuration `cfg`.
///
/// The minimum of DRAM peak bandwidth (from the NB state's memory clock)
/// and NB link bandwidth (from the NB clock). With default parameters the
/// link saturates DRAM from NB2 onward, reproducing Figure 2(b)'s plateau.
pub fn effective_memory_bandwidth(params: &SimParams, cfg: HwConfig) -> f64 {
    let dram = params.dram_bandwidth_gbps(cfg.nb.mem_freq_mhz());
    let link = params.nb_link_bandwidth_gbps(cfg.nb.freq_ghz());
    dram.min(link)
}

/// Computes the execution-time breakdown of `kernel` at `cfg`.
///
/// This is the noiseless analytical model; measurement noise is applied by
/// [`ApuSimulator::evaluate`](crate::ApuSimulator::evaluate).
pub fn execution_time(
    params: &SimParams,
    kernel: &KernelCharacteristics,
    cfg: HwConfig,
) -> TimeBreakdown {
    let cu = f64::from(cfg.cu.get());
    let f_gpu_ghz = cfg.gpu.freq_mhz() / 1000.0;

    // Compute phase: Amdahl across CUs, LDS conflicts stretch ALU issue.
    let per_cu_gops = params.lanes_per_cu * f_gpu_ghz * kernel.occupancy();
    let p = kernel.parallel_fraction();
    let scaling = (1.0 - p) + p / cu;
    let lds_stretch = 1.0 + kernel.lds_conflict() * params.lds_conflict_penalty;
    let compute_s = kernel.compute_gops() / per_cu_gops * scaling * lds_stretch;

    // Memory phase: cache-filtered DRAM traffic plus an L2 term.
    let hit = kernel.cache_hit_at(cfg.cu.get());
    let dram_traffic_gb = kernel.memory_gb() * (1.0 - hit);
    let mem_bw = effective_memory_bandwidth(params, cfg);
    let dram_s = dram_traffic_gb / mem_bw;
    let l2_bw = params.l2_gbps_per_cu_ghz * cu * f_gpu_ghz;
    let l2_s = kernel.memory_gb() * hit / l2_bw;
    let memory_s = dram_s + l2_s;

    // Partial overlap of the two phases.
    let longer = compute_s.max(memory_s);
    let shorter = compute_s.min(memory_s);
    let busy_s = longer + params.overlap_penalty * shorter;

    // Launch overhead and part of the serial latency are host-side driver
    // work: they stretch when the CPU is clocked down. This is the one
    // place kernel time depends on the CPU P-state, and it is what makes
    // "catching up" from performance debt genuinely expensive — recovery
    // configurations want CPU boost, whose busy-wait power is large.
    let cpu_slowdown = CpuPState::P1.freq_ghz() / cfg.cpu.freq_ghz();
    let launch_s = kernel.launch_overhead_s() * (0.3 + 0.7 * cpu_slowdown);
    let fixed_s = kernel.fixed_time_s() * (0.6 + 0.4 * cpu_slowdown);
    let total_s = busy_s + launch_s + fixed_s;

    let alu_activity = if busy_s > 0.0 {
        (compute_s / busy_s).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let mem_util = if total_s > 0.0 {
        (dram_traffic_gb / mem_bw / total_s).clamp(0.0, 1.0)
    } else {
        0.0
    };

    TimeBreakdown {
        compute_s,
        memory_s,
        fixed_s,
        launch_s,
        total_s,
        alu_activity,
        mem_util,
        dram_traffic_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCharacteristics;
    use gpm_hw::{CpuPState, CuCount, GpuDpm, NbState};

    fn cfg(nb: NbState, gpu: GpuDpm, cu: u32) -> HwConfig {
        HwConfig::new(CpuPState::P1, nb, gpu, CuCount::new(cu).unwrap())
    }

    #[test]
    fn compute_bound_scales_with_cus() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 40.0);
        let t2 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 2)).total_s;
        let t8 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        let speedup = t2 / t8;
        assert!(speedup > 2.8, "speedup {speedup} too low for compute-bound");
    }

    #[test]
    fn compute_bound_insensitive_to_nb() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 40.0);
        let t_nb0 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        let t_nb3 = execution_time(&p, &k, cfg(NbState::Nb3, GpuDpm::Dpm4, 8)).total_s;
        assert!(t_nb3 / t_nb0 < 1.10, "ratio {}", t_nb3 / t_nb0);
    }

    #[test]
    fn compute_bound_scales_with_gpu_freq() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 40.0);
        let t_lo = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm0, 8)).total_s;
        let t_hi = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        let speedup = t_lo / t_hi;
        let freq_ratio = GpuDpm::Dpm4.freq_mhz() / GpuDpm::Dpm0.freq_mhz();
        assert!((speedup - freq_ratio).abs() < 0.2 * freq_ratio);
    }

    #[test]
    fn memory_bound_saturates_from_nb2() {
        // Figure 2(b): NB2 through NB0 have the same DRAM bandwidth.
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::memory_bound("mb", 2.0);
        let t0 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        let t2 = execution_time(&p, &k, cfg(NbState::Nb2, GpuDpm::Dpm4, 8)).total_s;
        let t3 = execution_time(&p, &k, cfg(NbState::Nb3, GpuDpm::Dpm4, 8)).total_s;
        assert!(
            (t2 / t0 - 1.0).abs() < 0.02,
            "NB2 should match NB0, ratio {}",
            t2 / t0
        );
        assert!(
            t3 / t0 > 1.8,
            "NB3 should be much slower, ratio {}",
            t3 / t0
        );
    }

    #[test]
    fn memory_bound_insensitive_to_cus() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::memory_bound("mb", 2.0);
        let t2 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 2)).total_s;
        let t8 = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        assert!(
            t2 / t8 < 1.5,
            "memory-bound CU speedup {} too high",
            t2 / t8
        );
    }

    #[test]
    fn peak_kernel_peaks_below_max_cus() {
        // Figure 2(c): destructive cache interference makes 8 CUs slower
        // than the sweet spot.
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::peak("pk", 20.0);
        let times: Vec<f64> = [2u32, 4, 6, 8]
            .iter()
            .map(|&cu| execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, cu)).total_s)
            .collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            best == 1 || best == 2,
            "peak at index {best}, times {times:?}"
        );
        assert!(
            times[3] > times[best] * 1.05,
            "8 CUs should be clearly worse"
        );
    }

    #[test]
    fn unscalable_kernel_is_config_insensitive() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::unscalable("astar", 0.02);
        let t_max = execution_time(&p, &k, cfg(NbState::Nb0, GpuDpm::Dpm4, 8)).total_s;
        let t_min = execution_time(&p, &k, cfg(NbState::Nb3, GpuDpm::Dpm0, 2)).total_s;
        assert!(
            t_min / t_max < 1.35,
            "unscalable varies too much: {}",
            t_min / t_max
        );
    }

    #[test]
    fn total_is_sum_of_parts_with_overlap() {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::builder("k", 10.0)
            .memory_gb(0.5)
            .build();
        let b = execution_time(&p, &k, cfg(NbState::Nb1, GpuDpm::Dpm2, 4));
        let expect = b.compute_s.max(b.memory_s)
            + p.overlap_penalty * b.compute_s.min(b.memory_s)
            + b.launch_s
            + b.fixed_s;
        assert!((b.total_s - expect).abs() < 1e-12);
    }

    #[test]
    fn activities_are_fractions() {
        let p = SimParams::noiseless();
        for k in [
            KernelCharacteristics::compute_bound("a", 10.0),
            KernelCharacteristics::memory_bound("b", 1.0),
            KernelCharacteristics::peak("c", 10.0),
            KernelCharacteristics::unscalable("d", 0.01),
        ] {
            let b = execution_time(&p, &k, cfg(NbState::Nb2, GpuDpm::Dpm2, 4));
            assert!((0.0..=1.0).contains(&b.alu_activity));
            assert!((0.0..=1.0).contains(&b.mem_util));
            assert!(b.total_s > 0.0);
        }
    }

    #[test]
    fn lds_conflicts_slow_compute() {
        let p = SimParams::noiseless();
        let clean = KernelCharacteristics::builder("k", 10.0)
            .lds_conflict(0.0)
            .build();
        let conflicted = KernelCharacteristics::builder("k", 10.0)
            .lds_conflict(0.8)
            .build();
        let c = cfg(NbState::Nb0, GpuDpm::Dpm4, 8);
        assert!(
            execution_time(&p, &conflicted, c).compute_s > execution_time(&p, &clean, c).compute_s
        );
    }
}
