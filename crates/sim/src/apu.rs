//! The top-level APU simulator.

use crate::counters::CounterSet;
use crate::kernel::KernelCharacteristics;
use crate::outcome::{EnergyBreakdown, KernelOutcome};
use crate::params::SimParams;
use crate::perf;
use crate::power;
use gpm_hw::{CpuPState, HwConfig};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Simulates kernel executions on an A10-7850K-class APU.
///
/// `evaluate` plays the role of running a kernel on instrumented hardware:
/// it returns the time, power, energy, and performance counters a profiling
/// campaign would capture, including deterministic measurement noise.
/// `evaluate_exact` exposes the noiseless analytical model (used as the
/// ground truth for "perfect prediction" studies).
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let k = KernelCharacteristics::memory_bound("stream", 1.0);
/// let fast = sim.evaluate(&k, HwConfig::MAX_PERF);
/// let slow = sim.evaluate(&k, HwConfig::FAIL_SAFE);
/// assert!(fast.time_s > 0.0 && slow.time_s > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ApuSimulator {
    params: SimParams,
}

impl ApuSimulator {
    /// Creates a simulator with the given calibration parameters.
    pub fn new(params: SimParams) -> ApuSimulator {
        ApuSimulator { params }
    }

    /// A simulator with measurement noise disabled.
    pub fn noiseless() -> ApuSimulator {
        ApuSimulator {
            params: SimParams::noiseless(),
        }
    }

    /// The calibration parameters in use.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Runs `kernel` at `cfg` and reports what instrumented hardware would
    /// measure, including multiplicative measurement noise on time and GPU
    /// power. The noise is a pure function of (noise seed, kernel name,
    /// configuration), so repeated calls agree — and so do re-runs of any
    /// experiment.
    pub fn evaluate(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> KernelOutcome {
        let mut out = self.evaluate_exact(kernel, cfg);
        if self.params.noise_rel_std > 0.0 {
            let (zt, zp) = self.noise_pair(kernel.name(), cfg);
            let tf = noise_factor(zt, self.params.noise_rel_std);
            let pf = noise_factor(zp, self.params.noise_rel_std);
            out.time_s *= tf;
            out.power.gpu_dyn_w *= pf;
            out.energy = EnergyBreakdown::from_power(&out.power, out.time_s);
            out.counters = self.noisy_counters(kernel.name(), cfg, out.counters);
        }
        out
    }

    /// Applies measurement noise to the *sampled* counters. Quantities the
    /// runtime knows exactly (`GlobalWorkSize`, `ScratchRegs`) stay exact;
    /// rate/percentage counters carry the same relative noise as other
    /// measurements, with percentage counters clamped to [0, 100].
    fn noisy_counters(&self, kernel_name: &str, cfg: HwConfig, counters: CounterSet) -> CounterSet {
        const EXACT: [bool; 8] = [true, false, false, false, true, false, false, false];
        const PERCENT: [bool; 8] = [false, true, true, false, false, true, false, false];
        let mut values = *counters.values();
        for (i, v) in values.iter_mut().enumerate() {
            if EXACT[i] {
                continue;
            }
            let mut h = DefaultHasher::new();
            self.params.noise_seed.hash(&mut h);
            kernel_name.hash(&mut h);
            cfg.dense_index().hash(&mut h);
            i.hash(&mut h);
            let (z, _) = box_muller(
                splitmix_unit(h.finish().wrapping_add(11)),
                splitmix_unit(h.finish().wrapping_add(13)),
            );
            *v *= noise_factor(z, self.params.noise_rel_std);
            if PERCENT[i] {
                *v = v.clamp(0.0, 100.0);
            }
        }
        CounterSet::from_values(values)
    }

    /// Runs the noiseless analytical model — the ground truth used by
    /// oracle predictors and the Theoretically Optimal scheme.
    pub fn evaluate_exact(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> KernelOutcome {
        let time = perf::execution_time(&self.params, kernel, cfg);
        let pwr = power::kernel_power(&self.params, cfg, &time);
        let counters = CounterSet::synthesize(kernel, cfg, &time);
        let energy = EnergyBreakdown::from_power(&pwr, time.total_s);
        KernelOutcome {
            time_s: time.total_s,
            time_breakdown: time,
            power: pwr,
            energy,
            counters,
            ginstructions: kernel.ginstructions(),
        }
    }

    /// Energy consumed by running optimizer code on the CPU for
    /// `duration_s` seconds at configuration `cfg` while the GPU idles —
    /// used to charge MPC/PPK overheads between kernels.
    pub fn optimizer_energy(&self, cfg: HwConfig, duration_s: f64) -> EnergyBreakdown {
        let pwr = power::optimizer_power(&self.params, cfg);
        EnergyBreakdown::from_power(&pwr, duration_s)
    }

    /// CPU busy-wait power at P-state `cpu` — the normalized `V²f` CPU
    /// model governors use when estimating configuration energy.
    pub fn cpu_busywait_power(&self, cpu: CpuPState) -> f64 {
        power::cpu_busywait_power(&self.params, cpu)
    }

    /// Whether `cfg` keeps package power within TDP for `kernel`.
    pub fn within_tdp(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> bool {
        self.evaluate_exact(kernel, cfg).power.package_w() <= self.params.tdp_w
    }

    /// Two independent standard-normal draws, deterministic per
    /// (seed, kernel, config).
    fn noise_pair(&self, kernel_name: &str, cfg: HwConfig) -> (f64, f64) {
        let mut h = DefaultHasher::new();
        self.params.noise_seed.hash(&mut h);
        kernel_name.hash(&mut h);
        cfg.dense_index().hash(&mut h);
        let s = h.finish();
        let u1 = splitmix_unit(s.wrapping_add(1));
        let u2 = splitmix_unit(s.wrapping_add(2));
        box_muller(u1, u2)
    }
}

/// SplitMix64 step mapped to (0, 1).
fn splitmix_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    // Map to (0,1) exclusive of endpoints to keep ln() finite.
    ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Box–Muller transform: two uniforms → two standard normals.
fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Multiplicative noise factor `1 + σz`, clamped to [0.7, 1.3] so a noisy
/// measurement can never flip sign or dominate the signal.
fn noise_factor(z: f64, rel_std: f64) -> f64 {
    (1.0 + rel_std * z).clamp(0.7, 1.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{ConfigSpace, CuCount, GpuDpm, NbState};

    #[test]
    fn evaluate_is_deterministic() {
        let sim = ApuSimulator::default();
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let a = sim.evaluate(&k, HwConfig::MAX_PERF);
        let b = sim.evaluate(&k, HwConfig::MAX_PERF);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.power.total_w(), b.power.total_w());
    }

    #[test]
    fn noise_varies_across_configs_but_stays_small() {
        let sim = ApuSimulator::default();
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let exact = sim.evaluate_exact(&k, HwConfig::MAX_PERF);
        let noisy = sim.evaluate(&k, HwConfig::MAX_PERF);
        let ratio = noisy.time_s / exact.time_s;
        assert!((0.7..=1.3).contains(&ratio));
    }

    #[test]
    fn noiseless_sim_matches_exact() {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::memory_bound("mb", 1.0);
        let a = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let b = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy.total_j(), b.energy.total_j());
    }

    #[test]
    fn energy_equals_power_times_time() {
        let sim = ApuSimulator::default();
        let k = KernelCharacteristics::peak("pk", 10.0);
        let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        assert!((out.energy.total_j() - out.power.total_w() * out.time_s).abs() < 1e-9);
    }

    #[test]
    fn max_perf_is_fastest_for_compute_bound() {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let fastest = sim.evaluate(&k, HwConfig::MAX_PERF).time_s;
        for cfg in &ConfigSpace::paper_campaign() {
            assert!(sim.evaluate(&k, cfg).time_s >= fastest - 1e-12);
        }
    }

    #[test]
    fn energy_optimal_points_differ_by_class() {
        // The crux of Figure 2: different classes reach best energy at
        // different configurations.
        let sim = ApuSimulator::noiseless();
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P7, GpuDpm::Dpm4);
        let best = |k: &KernelCharacteristics| {
            space
                .iter()
                .min_by(|&a, &b| {
                    let ea = sim.evaluate(k, a).energy.total_j();
                    let eb = sim.evaluate(k, b).energy.total_j();
                    ea.partial_cmp(&eb).unwrap()
                })
                .unwrap()
        };
        let cb = best(&KernelCharacteristics::compute_bound("cb", 20.0));
        let mb = best(&KernelCharacteristics::memory_bound("mb", 1.0));
        let pk = best(&KernelCharacteristics::peak("pk", 10.0));
        // Compute-bound: many CUs, low NB state.
        assert_eq!(cb.cu, CuCount::MAX);
        assert!(
            cb.nb >= NbState::Nb2,
            "compute-bound optimal NB was {}",
            cb.nb
        );
        // Memory-bound: needs NB2 or better for bandwidth.
        assert!(
            mb.nb <= NbState::Nb2,
            "memory-bound optimal NB was {}",
            mb.nb
        );
        // Peak: fewer than 8 CUs.
        assert!(pk.cu < CuCount::MAX, "peak optimal CU was {}", pk.cu);
    }

    #[test]
    fn within_tdp_at_fail_safe() {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        assert!(sim.within_tdp(&k, HwConfig::FAIL_SAFE));
    }

    #[test]
    fn optimizer_energy_scales_with_duration() {
        let sim = ApuSimulator::noiseless();
        let e1 = sim.optimizer_energy(HwConfig::MPC_HOST, 0.01);
        let e2 = sim.optimizer_energy(HwConfig::MPC_HOST, 0.02);
        assert!((e2.total_j() - 2.0 * e1.total_j()).abs() < 1e-9);
    }

    #[test]
    fn splitmix_unit_in_open_interval() {
        for i in 0..1000u64 {
            let u = splitmix_unit(i);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn box_muller_reasonable_spread() {
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 4000;
        for i in 0..n {
            let (a, b) = box_muller(splitmix_unit(i * 2), splitmix_unit(i * 2 + 1));
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let cnt = (2 * n) as f64;
        let mean = sum / cnt;
        let var = sum2 / cnt - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
