//! Analytical simulator of an AMD A10-7850K-class APU.
//!
//! The paper drives its evaluation from power/performance measurements of
//! real hardware at 336 configurations. This crate substitutes a
//! first-principles model with the same interface: given a kernel's
//! intrinsic characteristics ([`KernelCharacteristics`]) and a hardware
//! configuration ([`gpm_hw::HwConfig`]), [`ApuSimulator::evaluate`] returns
//! the kernel's execution time, a power breakdown, the energy consumed, and
//! the GPU performance counters of Table III.
//!
//! The model reproduces the behaviours the paper's results depend on:
//!
//! * a roofline-style performance model (compute vs. memory bound) with
//!   Amdahl-style CU scaling and shared-cache interference, yielding the
//!   four kernel classes of Figure 2;
//! * DRAM bandwidth set by the NB state's memory clock, saturating from NB2
//!   onwards (Figure 2(b));
//! * a CV²f dynamic-power model with a shared GPU/NB voltage rail and
//!   temperature-dependent leakage;
//! * deterministic, seedable measurement noise so that model training sees
//!   realistic (but reproducible) error.
//!
//! # Examples
//!
//! ```
//! use gpm_hw::HwConfig;
//! use gpm_sim::{ApuSimulator, KernelCharacteristics};
//!
//! let sim = ApuSimulator::default();
//! let kernel = KernelCharacteristics::compute_bound("maxflops", 40.0);
//! let out = sim.evaluate(&kernel, HwConfig::MAX_PERF);
//! assert!(out.time_s > 0.0 && out.power.total_w() > 0.0);
//! ```

pub mod apu;
pub mod counters;
pub mod kernel;
pub mod outcome;
pub mod params;
pub mod perf;
pub mod platform;
pub mod power;
pub mod predictor;
pub mod sampling;
pub mod thermal;
pub mod transition;

pub use apu::ApuSimulator;
pub use counters::{CounterSet, COUNTER_NAMES, NUM_COUNTERS};
pub use kernel::{KernelCharacteristics, KernelClass};
pub use outcome::{EnergyBreakdown, KernelOutcome, PowerBreakdown, TimeBreakdown};
pub use params::SimParams;
pub use platform::{Platform, ReplayPlatform};
pub use predictor::{KernelSnapshot, OraclePredictor, PowerPerfEstimate, PowerPerfPredictor};
