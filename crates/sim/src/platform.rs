//! The platform abstraction: where kernel "measurements" come from.
//!
//! The paper does not simulate — it **replays**: performance and power
//! were captured once per (kernel, configuration) on real hardware, and
//! every power-management scheme is evaluated against that table
//! (Section V: the campaign "permits accurate comparison of ... different
//! power management schemes"). [`Platform`] abstracts the source of
//! measurements so the harness can run either against the live analytical
//! model ([`ApuSimulator`]) or against a recorded table
//! ([`ReplayPlatform`]), which also proves that governors only ever visit
//! states the campaign covered.

use crate::apu::ApuSimulator;
use crate::kernel::KernelCharacteristics;
use crate::outcome::{EnergyBreakdown, KernelOutcome};
use crate::params::SimParams;
use gpm_hw::{ConfigSpace, HwConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A source of kernel measurements.
///
/// Implemented by the live analytical simulator and by recorded
/// measurement tables. `&ApuSimulator` coerces to `&dyn Platform`
/// wherever the harness accepts one.
pub trait Platform {
    /// Measured outcome of `kernel` at `cfg` (with measurement noise).
    fn evaluate(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> KernelOutcome;

    /// Energy of running optimizer code for `duration_s` at `cfg`.
    fn optimizer_energy(&self, cfg: HwConfig, duration_s: f64) -> EnergyBreakdown;

    /// The calibration parameters behind the platform.
    fn params(&self) -> &SimParams;
}

impl Platform for ApuSimulator {
    fn evaluate(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> KernelOutcome {
        ApuSimulator::evaluate(self, kernel, cfg)
    }

    fn optimizer_energy(&self, cfg: HwConfig, duration_s: f64) -> EnergyBreakdown {
        ApuSimulator::optimizer_energy(self, cfg, duration_s)
    }

    fn params(&self) -> &SimParams {
        ApuSimulator::params(self)
    }
}

/// A recorded measurement table: one [`KernelOutcome`] per
/// (kernel name, configuration) pair.
///
/// # Examples
///
/// ```
/// use gpm_hw::{ConfigSpace, HwConfig};
/// use gpm_sim::platform::{Platform, ReplayPlatform};
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let kernels = vec![KernelCharacteristics::compute_bound("k", 10.0)];
/// let replay = ReplayPlatform::record(&sim, &kernels, &ConfigSpace::paper_campaign());
/// let live = sim.evaluate(&kernels[0], HwConfig::FAIL_SAFE);
/// let replayed = replay.evaluate(&kernels[0], HwConfig::FAIL_SAFE);
/// assert_eq!(live.time_s, replayed.time_s);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayPlatform {
    records: HashMap<String, HashMap<usize, KernelOutcome>>,
    params: SimParams,
    /// Inner simulator for optimizer-energy accounting (cheap analytic
    /// quantities the campaign does not capture).
    #[serde(skip, default)]
    inner: ApuSimulator,
}

impl ReplayPlatform {
    /// Runs the measurement campaign for `kernels` over `space` and
    /// freezes the results.
    pub fn record(
        sim: &ApuSimulator,
        kernels: &[KernelCharacteristics],
        space: &ConfigSpace,
    ) -> ReplayPlatform {
        let mut records: HashMap<String, HashMap<usize, KernelOutcome>> = HashMap::new();
        for kernel in kernels {
            let per_cfg = records.entry(kernel.name().to_string()).or_default();
            for cfg in space {
                per_cfg.insert(cfg.dense_index(), sim.evaluate(kernel, cfg));
            }
        }
        ReplayPlatform {
            records,
            params: sim.params().clone(),
            inner: ApuSimulator::new(sim.params().clone()),
        }
    }

    /// Number of recorded (kernel, configuration) measurements.
    pub fn len(&self) -> usize {
        self.records.values().map(HashMap::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a measurement exists for `(kernel_name, cfg)`.
    pub fn contains(&self, kernel_name: &str, cfg: HwConfig) -> bool {
        self.records
            .get(kernel_name)
            .is_some_and(|m| m.contains_key(&cfg.dense_index()))
    }

    /// Serializes the table to JSON (the exportable campaign artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("replay table serializes")
    }

    /// Restores a table exported with [`ReplayPlatform::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<ReplayPlatform, serde_json::Error> {
        let mut p: ReplayPlatform = serde_json::from_str(json)?;
        p.inner = ApuSimulator::new(p.params.clone());
        Ok(p)
    }
}

impl Platform for ReplayPlatform {
    /// Replays the recorded measurement.
    ///
    /// # Panics
    ///
    /// Panics when `(kernel, cfg)` was never measured — a governor
    /// visiting an unrecorded state is an experiment-design bug, exactly
    /// the situation the paper's 336-configuration campaign rules out.
    fn evaluate(&self, kernel: &KernelCharacteristics, cfg: HwConfig) -> KernelOutcome {
        self.records
            .get(kernel.name())
            .and_then(|m| m.get(&cfg.dense_index()))
            .unwrap_or_else(|| {
                panic!(
                    "no recorded measurement for kernel `{}` at {cfg} — \
                     the campaign space does not cover this state",
                    kernel.name()
                )
            })
            .clone()
    }

    fn optimizer_energy(&self, cfg: HwConfig, duration_s: f64) -> EnergyBreakdown {
        self.inner.optimizer_energy(cfg, duration_s)
    }

    fn params(&self) -> &SimParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<KernelCharacteristics> {
        vec![
            KernelCharacteristics::compute_bound("a", 10.0),
            KernelCharacteristics::memory_bound("b", 1.0),
        ]
    }

    #[test]
    fn replay_matches_live_bit_for_bit() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let replay = ReplayPlatform::record(&sim, &ks, &ConfigSpace::paper_campaign());
        assert_eq!(replay.len(), 2 * 336);
        for cfg in &ConfigSpace::paper_campaign() {
            for k in &ks {
                let live = Platform::evaluate(&sim, k, cfg);
                let rep = replay.evaluate(k, cfg);
                assert_eq!(live, rep);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no recorded measurement")]
    fn unrecorded_state_panics() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        // Record only the measured campaign; DPM1 is outside it.
        let replay = ReplayPlatform::record(&sim, &ks, &ConfigSpace::paper_campaign());
        let mut cfg = HwConfig::FAIL_SAFE;
        cfg.gpu = gpm_hw::GpuDpm::Dpm1;
        let _ = replay.evaluate(&ks[0], cfg);
    }

    #[test]
    fn json_roundtrip_preserves_measurements() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let space = ConfigSpace::nb_cu_sweep(gpm_hw::CpuPState::P5, gpm_hw::GpuDpm::Dpm4);
        let replay = ReplayPlatform::record(&sim, &ks, &space);
        let restored = ReplayPlatform::from_json(&replay.to_json()).unwrap();
        assert_eq!(restored.len(), replay.len());
        for cfg in &space {
            assert_eq!(replay.evaluate(&ks[0], cfg), restored.evaluate(&ks[0], cfg));
        }
    }

    #[test]
    fn contains_reports_coverage() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let replay = ReplayPlatform::record(&sim, &ks, &ConfigSpace::paper_campaign());
        assert!(replay.contains("a", HwConfig::FAIL_SAFE));
        assert!(!replay.contains("nope", HwConfig::FAIL_SAFE));
        assert!(!replay.is_empty());
    }

    #[test]
    fn dyn_platform_dispatch_works() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let replay = ReplayPlatform::record(&sim, &ks, &ConfigSpace::paper_campaign());
        let platforms: Vec<&dyn Platform> = vec![&sim, &replay];
        for p in platforms {
            let out = p.evaluate(&ks[0], HwConfig::FAIL_SAFE);
            assert!(out.time_s > 0.0);
            assert!(p.optimizer_energy(HwConfig::MPC_HOST, 0.001).total_j() > 0.0);
            assert_eq!(p.params().tdp_w, 95.0);
        }
    }
}
