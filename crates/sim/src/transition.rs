//! DVFS state-transition costs.
//!
//! Real hardware pays for every power-state change: PLL relock and voltage
//! ramp for clock domains, DRAM retraining when the memory clock moves,
//! and CU power-gating wake-up. The paper's evaluation (like most DVFS
//! studies) treats transitions as free; this module makes the cost a
//! first-class, *default-off* model so its effect on kernel-granularity
//! governors can be quantified (`transition_cost` binary).
//!
//! Costs are charged per changed domain, scaled by
//! [`SimParams::dvfs_transition_scale`] (0 disables the model, 1 uses the
//! nominal latencies below).

use crate::params::SimParams;
use gpm_hw::HwConfig;

/// Nominal CPU P-state change latency (voltage ramp), seconds.
pub const CPU_TRANSITION_S: f64 = 30e-6;

/// Nominal NB clock change latency, seconds.
pub const NB_TRANSITION_S: f64 = 60e-6;

/// Additional latency when the *memory* clock changes (DRAM retraining —
/// only on the NB3 boundary, where the bus drops to 333 MHz), seconds.
pub const MEM_RETRAIN_S: f64 = 250e-6;

/// Nominal GPU DPM change latency, seconds.
pub const GPU_TRANSITION_S: f64 = 50e-6;

/// Nominal CU power-gate/un-gate latency, seconds.
pub const CU_TRANSITION_S: f64 = 20e-6;

/// Wall-clock cost of switching the chip from `from` to `to`, seconds.
///
/// Domains change independently (they have separate sequencers), so the
/// charge is the *maximum* of the changed domains' latencies — except
/// memory retraining, which serializes with everything.
pub fn transition_cost_s(params: &SimParams, from: HwConfig, to: HwConfig) -> f64 {
    if params.dvfs_transition_scale == 0.0 || from == to {
        return 0.0;
    }
    let mut parallel: f64 = 0.0;
    if from.cpu != to.cpu {
        parallel = parallel.max(CPU_TRANSITION_S);
    }
    if from.nb != to.nb {
        parallel = parallel.max(NB_TRANSITION_S);
    }
    if from.gpu != to.gpu {
        parallel = parallel.max(GPU_TRANSITION_S);
    }
    if from.cu != to.cu {
        parallel = parallel.max(CU_TRANSITION_S);
    }
    let retrain = if from.nb.mem_freq_mhz() != to.nb.mem_freq_mhz() {
        MEM_RETRAIN_S
    } else {
        0.0
    };
    params.dvfs_transition_scale * (parallel + retrain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{CpuPState, CuCount, GpuDpm, NbState};

    fn params(scale: f64) -> SimParams {
        SimParams {
            dvfs_transition_scale: scale,
            ..SimParams::noiseless()
        }
    }

    #[test]
    fn disabled_by_default() {
        let p = SimParams::default();
        assert_eq!(p.dvfs_transition_scale, 0.0);
        assert_eq!(
            transition_cost_s(&p, HwConfig::FAIL_SAFE, HwConfig::MAX_PERF),
            0.0
        );
    }

    #[test]
    fn same_config_is_free() {
        let p = params(1.0);
        assert_eq!(
            transition_cost_s(&p, HwConfig::MAX_PERF, HwConfig::MAX_PERF),
            0.0
        );
    }

    #[test]
    fn single_domain_costs_its_latency() {
        let p = params(1.0);
        let a = HwConfig::MAX_PERF;
        let mut b = a;
        b.gpu = GpuDpm::Dpm0;
        assert_eq!(transition_cost_s(&p, a, b), GPU_TRANSITION_S);
        let mut c = a;
        c.cu = CuCount::MIN;
        assert_eq!(transition_cost_s(&p, a, c), CU_TRANSITION_S);
    }

    #[test]
    fn parallel_domains_take_the_max() {
        let p = params(1.0);
        let a = HwConfig::MAX_PERF;
        let b = HwConfig::new(CpuPState::P7, NbState::Nb1, GpuDpm::Dpm0, CuCount::MIN);
        // CPU+NB+GPU+CU all change; NB (60 µs) dominates; no retrain
        // (both NB0→NB1 keep the 800 MHz memory clock).
        assert_eq!(transition_cost_s(&p, a, b), NB_TRANSITION_S);
    }

    #[test]
    fn memory_retraining_serializes() {
        let p = params(1.0);
        let a = HwConfig::MAX_PERF; // NB0, 800 MHz
        let mut b = a;
        b.nb = NbState::Nb3; // 333 MHz
        assert_eq!(transition_cost_s(&p, a, b), NB_TRANSITION_S + MEM_RETRAIN_S);
    }

    #[test]
    fn scale_multiplies() {
        let a = HwConfig::MAX_PERF;
        let mut b = a;
        b.gpu = GpuDpm::Dpm0;
        assert_eq!(
            transition_cost_s(&params(3.0), a, b),
            3.0 * transition_cost_s(&params(1.0), a, b)
        );
    }
}
