//! Power-trace sampling.
//!
//! The paper captures CPU and GPU power "from the APU's power management
//! controller at 1 ms intervals" (Section V). This module reproduces that
//! instrument: a run is a sequence of piecewise-constant power segments
//! (kernels, optimizer gaps, idle), and [`sample_trace`] reads them out at
//! a fixed sampling interval, attributing each sample to the segment under
//! the sampling instant.

use crate::power::PowerBreakdown;
use serde::{Deserialize, Serialize};

/// One piecewise-constant interval of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSegment {
    /// Label, e.g. the kernel name or `"mpc-optimizer"`.
    pub label: String,
    /// Segment duration, seconds.
    pub duration_s: f64,
    /// Average power during the segment.
    pub power: PowerBreakdown,
}

/// One sample of the measured trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Sample timestamp, seconds from run start.
    pub t_s: f64,
    /// CPU-domain power, watts.
    pub cpu_w: f64,
    /// GPU-domain power (GPU + NB), watts.
    pub gpu_w: f64,
    /// Total chip + DRAM power, watts.
    pub total_w: f64,
    /// Label of the segment the sample fell into.
    pub label: String,
}

/// Samples a segment sequence every `interval_s` seconds (the paper's
/// controller uses 1 ms).
///
/// Sampling instants are `0, interval, 2·interval, …` up to (exclusive)
/// the total duration; zero-length segments are never sampled.
///
/// # Panics
///
/// Panics if `interval_s` is not positive.
///
/// # Examples
///
/// ```
/// use gpm_sim::sampling::{sample_trace, PowerSegment};
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
/// use gpm_hw::HwConfig;
///
/// let sim = ApuSimulator::default();
/// let k = KernelCharacteristics::compute_bound("k", 10.0);
/// let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
/// let segments = vec![PowerSegment {
///     label: "k".into(),
///     duration_s: out.time_s,
///     power: out.power,
/// }];
/// let trace = sample_trace(&segments, 1e-3);
/// assert!(!trace.is_empty());
/// ```
pub fn sample_trace(segments: &[PowerSegment], interval_s: f64) -> Vec<PowerSample> {
    assert!(interval_s > 0.0, "sampling interval must be positive");
    let total: f64 = segments.iter().map(|s| s.duration_s).sum();
    let mut samples = Vec::new();
    let mut seg_idx = 0usize;
    let mut seg_end = segments.first().map_or(0.0, |s| s.duration_s);
    let mut t = 0.0;
    while t < total {
        while t >= seg_end && seg_idx + 1 < segments.len() {
            seg_idx += 1;
            seg_end += segments[seg_idx].duration_s;
        }
        let seg = &segments[seg_idx];
        samples.push(PowerSample {
            t_s: t,
            cpu_w: seg.power.cpu_domain_w(),
            gpu_w: seg.power.gpu_domain_w(),
            total_w: seg.power.total_w(),
            label: seg.label.clone(),
        });
        t += interval_s;
    }
    samples
}

/// Trapezoid-free energy estimate from a sampled trace (sample power ×
/// interval) — what an instrument integrating the 1 ms samples would
/// report, in joules.
pub fn trace_energy_j(trace: &[PowerSample], interval_s: f64) -> f64 {
    trace.iter().map(|s| s.total_w * interval_s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_power(w: f64) -> PowerBreakdown {
        PowerBreakdown {
            cpu_dyn_w: w / 2.0,
            gpu_dyn_w: w / 2.0,
            nb_dyn_w: 0.0,
            dram_w: 0.0,
            cpu_leak_w: 0.0,
            gpu_leak_w: 0.0,
            other_w: 0.0,
            temp_c: 50.0,
        }
    }

    fn segments() -> Vec<PowerSegment> {
        vec![
            PowerSegment {
                label: "a".into(),
                duration_s: 0.010,
                power: flat_power(40.0),
            },
            PowerSegment {
                label: "b".into(),
                duration_s: 0.005,
                power: flat_power(80.0),
            },
        ]
    }

    #[test]
    fn sample_count_matches_duration() {
        let trace = sample_trace(&segments(), 1e-3);
        assert_eq!(trace.len(), 15);
        assert_eq!(trace[0].t_s, 0.0);
        assert!((trace[14].t_s - 0.014).abs() < 1e-12);
    }

    #[test]
    fn samples_attribute_to_their_segment() {
        let trace = sample_trace(&segments(), 1e-3);
        assert!(trace[..10]
            .iter()
            .all(|s| s.label == "a" && (s.total_w - 40.0).abs() < 1e-9));
        assert!(trace[10..]
            .iter()
            .all(|s| s.label == "b" && (s.total_w - 80.0).abs() < 1e-9));
    }

    #[test]
    fn trace_energy_approximates_true_energy() {
        let segs = segments();
        let truth: f64 = segs.iter().map(|s| s.duration_s * s.power.total_w()).sum();
        let trace = sample_trace(&segs, 1e-3);
        let measured = trace_energy_j(&trace, 1e-3);
        assert!(
            (measured / truth - 1.0).abs() < 0.05,
            "measured {measured} truth {truth}"
        );
    }

    #[test]
    fn coarse_sampling_still_lands_in_bounds() {
        let segs = segments();
        let trace = sample_trace(&segs, 4e-3);
        assert_eq!(trace.len(), 4); // t = 0, 4, 8, 12 ms
        assert!(trace.iter().all(|s| s.total_w == 40.0 || s.total_w == 80.0));
    }

    #[test]
    fn empty_segments_empty_trace() {
        assert!(sample_trace(&[], 1e-3).is_empty());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = sample_trace(&segments(), 0.0);
    }
}
