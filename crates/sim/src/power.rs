//! Chip power model.
//!
//! Dynamic power follows `C·V²·f` per domain, with the GPU and NB sharing a
//! voltage rail ([`HwConfig::rail_voltage`]). The CPU busy-waits during
//! kernel execution, so its power is its `V²f`-scaled busy-wait dissipation
//! (the same normalized-`V²f` model the paper uses for CPU prediction).
//! Leakage is resolved against temperature by [`crate::thermal`].

use crate::params::SimParams;
use crate::perf::TimeBreakdown;
use crate::thermal;
use gpm_hw::{CpuPState, HwConfig};
use serde::{Deserialize, Serialize};

/// Per-domain power during a kernel invocation, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// CPU dynamic power (busy-wait).
    pub cpu_dyn_w: f64,
    /// GPU core dynamic power.
    pub gpu_dyn_w: f64,
    /// Northbridge dynamic power (shares the GPU rail).
    pub nb_dyn_w: f64,
    /// DRAM static + access power.
    pub dram_w: f64,
    /// CPU leakage after thermal coupling.
    pub cpu_leak_w: f64,
    /// GPU + uncore leakage after thermal coupling.
    pub gpu_leak_w: f64,
    /// Remaining SoC power.
    pub other_w: f64,
    /// Die temperature reached, °C.
    pub temp_c: f64,
}

impl PowerBreakdown {
    /// Total chip + DRAM power.
    pub fn total_w(&self) -> f64 {
        self.cpu_dyn_w
            + self.gpu_dyn_w
            + self.nb_dyn_w
            + self.dram_w
            + self.cpu_leak_w
            + self.gpu_leak_w
            + self.other_w
    }

    /// Power on the package (excludes DRAM devices), the quantity a TDP
    /// governor constrains.
    pub fn package_w(&self) -> f64 {
        self.total_w() - self.dram_w
    }

    /// The "GPU power" a tool like CodeXL would report on this part: the
    /// GPU rail including the NB, plus GPU leakage (Section V: "The NB
    /// power is included in the GPU measurement, since they share the same
    /// voltage rail").
    pub fn gpu_domain_w(&self) -> f64 {
        self.gpu_dyn_w + self.nb_dyn_w + self.gpu_leak_w
    }

    /// CPU-attributed power (dynamic + leakage).
    pub fn cpu_domain_w(&self) -> f64 {
        self.cpu_dyn_w + self.cpu_leak_w
    }
}

/// CPU busy-wait power at P-state `cpu`, the normalized `V²f` model of
/// Section IV-A3.
pub fn cpu_busywait_power(params: &SimParams, cpu: CpuPState) -> f64 {
    params.cpu_dyn_max_w * params.cpu_busywait_activity * cpu.v2f_rel()
}

/// CPU power while actively running optimizer code (no busy-wait idling),
/// used to charge MPC/PPK overheads.
pub fn cpu_active_power(params: &SimParams, cpu: CpuPState) -> f64 {
    params.cpu_dyn_max_w * cpu.v2f_rel()
}

/// Nominal (45 °C) leakage for configuration `cfg`: per-CU GPU leakage
/// scaled by rail voltage, uncore leakage, and CPU leakage scaled by core
/// voltage. Inactive CUs are power-gated.
pub fn nominal_leakage(params: &SimParams, cfg: HwConfig) -> (f64, f64) {
    let v_rail = cfg.rail_voltage();
    let gpu_leak = params.gpu_uncore_leak_w * (v_rail / 1.225)
        + params.gpu_leak_w_per_cu * f64::from(cfg.cu.get()) * (v_rail / 1.225);
    let cpu_leak = params.cpu_leak_w * (cfg.cpu.voltage() / 1.325);
    (cpu_leak, gpu_leak)
}

/// Computes the power breakdown of a kernel invocation whose time behaviour
/// is `time` at configuration `cfg`.
pub fn kernel_power(params: &SimParams, cfg: HwConfig, time: &TimeBreakdown) -> PowerBreakdown {
    let v_rail = cfg.rail_voltage();
    let f_gpu_ghz = cfg.gpu.freq_mhz() / 1000.0;
    let cu = f64::from(cfg.cu.get());

    // Clock distribution keeps some switching even when ALUs stall.
    let gpu_activity = 0.25 + 0.75 * time.alu_activity;
    let gpu_dyn_w = params.gpu_cv2f_w * cu * v_rail * v_rail * f_gpu_ghz * gpu_activity;

    let nb_activity = 0.3 + 0.7 * time.mem_util;
    let nb_dyn_w = params.nb_cv2f_w * v_rail * v_rail * cfg.nb.freq_ghz() * nb_activity;

    let dram_bw_used = if time.total_s > 0.0 {
        time.dram_traffic_gb / time.total_s
    } else {
        0.0
    };
    let dram_w = params.dram_static_w + params.dram_j_per_gb * dram_bw_used;

    let cpu_dyn_w = cpu_busywait_power(params, cfg.cpu);

    let (cpu_leak_nom, gpu_leak_nom) = nominal_leakage(params, cfg);
    let dynamic_package = cpu_dyn_w + gpu_dyn_w + nb_dyn_w + params.soc_other_w;
    let th = thermal::solve(params, dynamic_package, cpu_leak_nom + gpu_leak_nom);
    let leak_total = th.leak_w;
    let nom_total = cpu_leak_nom + gpu_leak_nom;
    let (cpu_leak_w, gpu_leak_w) = if nom_total > 0.0 {
        (
            leak_total * cpu_leak_nom / nom_total,
            leak_total * gpu_leak_nom / nom_total,
        )
    } else {
        (0.0, 0.0)
    };

    PowerBreakdown {
        cpu_dyn_w,
        gpu_dyn_w,
        nb_dyn_w,
        dram_w,
        cpu_leak_w,
        gpu_leak_w,
        other_w: params.soc_other_w,
        temp_c: th.temp_c,
    }
}

/// Package power when the GPU is idle and the CPU is running optimizer
/// code at P-state `cpu` — the situation during an MPC optimization pass
/// between kernels. GPU static power continues to burn (the "static energy
/// overhead of the GPU during MPC optimization", Section VI-A).
pub fn optimizer_power(params: &SimParams, cfg: HwConfig) -> PowerBreakdown {
    let cpu_dyn_w = cpu_active_power(params, cfg.cpu);
    let (cpu_leak_nom, gpu_leak_nom) = nominal_leakage(params, cfg);
    let dynamic_package = cpu_dyn_w + params.soc_other_w;
    let th = thermal::solve(params, dynamic_package, cpu_leak_nom + gpu_leak_nom);
    let nom_total = cpu_leak_nom + gpu_leak_nom;
    let (cpu_leak_w, gpu_leak_w) = if nom_total > 0.0 {
        (
            th.leak_w * cpu_leak_nom / nom_total,
            th.leak_w * gpu_leak_nom / nom_total,
        )
    } else {
        (0.0, 0.0)
    };
    PowerBreakdown {
        cpu_dyn_w,
        gpu_dyn_w: 0.0,
        nb_dyn_w: 0.4 * params.nb_cv2f_w * cfg.rail_voltage() * cfg.rail_voltage(),
        dram_w: params.dram_static_w,
        cpu_leak_w,
        gpu_leak_w,
        other_w: params.soc_other_w,
        temp_c: th.temp_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCharacteristics;
    use crate::perf::execution_time;
    use gpm_hw::{CuCount, GpuDpm, NbState};

    fn breakdown(cfg: HwConfig) -> PowerBreakdown {
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 40.0);
        let t = execution_time(&p, &k, cfg);
        kernel_power(&p, cfg, &t)
    }

    #[test]
    fn all_components_positive() {
        let b = breakdown(HwConfig::MAX_PERF);
        assert!(b.cpu_dyn_w > 0.0);
        assert!(b.gpu_dyn_w > 0.0);
        assert!(b.nb_dyn_w > 0.0);
        assert!(b.dram_w > 0.0);
        assert!(b.cpu_leak_w > 0.0);
        assert!(b.gpu_leak_w > 0.0);
        assert!(b.temp_c > 30.0);
    }

    #[test]
    fn total_is_sum_of_components() {
        let b = breakdown(HwConfig::MAX_PERF);
        let sum = b.cpu_dyn_w
            + b.gpu_dyn_w
            + b.nb_dyn_w
            + b.dram_w
            + b.cpu_leak_w
            + b.gpu_leak_w
            + b.other_w;
        assert!((b.total_w() - sum).abs() < 1e-12);
        assert!((b.package_w() - (sum - b.dram_w)).abs() < 1e-12);
    }

    #[test]
    fn max_perf_power_in_tdp_envelope() {
        // Busy-wait CPU at P1 plus a fully loaded GPU should land near but
        // not wildly above the 95 W TDP.
        let b = breakdown(HwConfig::MAX_PERF);
        assert!(b.package_w() > 50.0, "package {}", b.package_w());
        assert!(b.package_w() < 110.0, "package {}", b.package_w());
    }

    #[test]
    fn lower_cpu_state_cuts_cpu_power() {
        let hi = breakdown(HwConfig::MAX_PERF);
        let mut cfg = HwConfig::MAX_PERF;
        cfg.cpu = CpuPState::P7;
        let lo = breakdown(cfg);
        assert!(lo.cpu_dyn_w < 0.25 * hi.cpu_dyn_w);
        // Thermal coupling: GPU leakage also drops slightly (Section II-A).
        assert!(lo.gpu_leak_w < hi.gpu_leak_w);
        assert!(lo.gpu_dyn_w == hi.gpu_dyn_w);
    }

    #[test]
    fn high_nb_state_blocks_gpu_voltage_drop() {
        // At NB0 the shared rail stays at the NB request even when the GPU
        // drops to DPM0, limiting power savings (Section II-A).
        let p = SimParams::noiseless();
        let k = KernelCharacteristics::compute_bound("cb", 40.0);
        let mk = |nb, gpu| {
            let cfg = HwConfig::new(CpuPState::P7, nb, gpu, CuCount::MAX);
            let t = execution_time(&p, &k, cfg);
            (cfg, kernel_power(&p, cfg, &t))
        };
        let (cfg_nb0, _) = mk(NbState::Nb0, GpuDpm::Dpm0);
        let (cfg_nb3, _) = mk(NbState::Nb3, GpuDpm::Dpm0);
        assert!(cfg_nb0.rail_voltage() > cfg_nb3.rail_voltage());
    }

    #[test]
    fn gpu_domain_includes_nb() {
        let b = breakdown(HwConfig::MAX_PERF);
        assert!((b.gpu_domain_w() - (b.gpu_dyn_w + b.nb_dyn_w + b.gpu_leak_w)).abs() < 1e-12);
    }

    #[test]
    fn cpu_busywait_power_scales_with_v2f() {
        let p = SimParams::noiseless();
        let p1 = cpu_busywait_power(&p, CpuPState::P1);
        let p7 = cpu_busywait_power(&p, CpuPState::P7);
        assert!((p7 / p1 - CpuPState::P7.v2f_rel()).abs() < 1e-12);
    }

    #[test]
    fn optimizer_power_below_kernel_power() {
        let p = SimParams::noiseless();
        let opt = optimizer_power(&p, HwConfig::MPC_HOST);
        let b = breakdown(HwConfig::MAX_PERF);
        assert!(opt.total_w() < b.total_w());
        assert_eq!(opt.gpu_dyn_w, 0.0);
        assert!(opt.gpu_leak_w > 0.0, "GPU static power still burns");
    }

    #[test]
    fn fewer_cus_leak_less() {
        let p = SimParams::noiseless();
        let full = nominal_leakage(&p, HwConfig::MAX_PERF);
        let mut cfg = HwConfig::MAX_PERF;
        cfg.cu = CuCount::MIN;
        let gated = nominal_leakage(&p, cfg);
        assert!(gated.1 < full.1);
        assert_eq!(gated.0, full.0);
    }
}
