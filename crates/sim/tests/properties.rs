//! Property tests of the analytical APU model.

use gpm_hw::{CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm_sim::{ApuSimulator, KernelCharacteristics, SimParams};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = HwConfig> {
    (0usize..7, 0usize..4, 0usize..5, 0usize..4).prop_map(|(c, n, g, u)| {
        HwConfig::new(
            CpuPState::from_index(c).unwrap(),
            NbState::from_index(n).unwrap(),
            GpuDpm::from_index(g).unwrap(),
            CuCount::from_index(u).unwrap(),
        )
    })
}

fn any_kernel() -> impl Strategy<Value = KernelCharacteristics> {
    (
        0.5f64..80.0,
        0.0f64..4.0,
        0.0f64..1.0,
        0.0f64..0.12,
        0.2f64..1.0,
        0.05f64..1.0,
        0.0f64..0.08,
        0.0f64..1.0,
    )
        .prop_map(|(gops, gb, hit, intf, pf, occ, fixed, lds)| {
            KernelCharacteristics::builder("prop", gops)
                .memory_gb(gb)
                .cache_hit(hit)
                .cache_interference(intf)
                .parallel_fraction(pf)
                .occupancy(occ)
                .fixed_time(fixed)
                .lds_conflict(lds)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn more_work_never_runs_faster(k in any_kernel(), cfg in any_config(), scale in 1.0f64..8.0) {
        let sim = ApuSimulator::noiseless();
        let big = k.with_input_scale(scale);
        let t_small = sim.evaluate(&k, cfg).time_s;
        let t_big = sim.evaluate(&big, cfg).time_s;
        prop_assert!(t_big >= t_small * 0.999, "scale {scale}: {t_big} < {t_small}");
    }

    #[test]
    fn measurement_noise_is_bounded_and_deterministic(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::default();
        let exact = sim.evaluate_exact(&k, cfg);
        let a = sim.evaluate(&k, cfg);
        let b = sim.evaluate(&k, cfg);
        prop_assert_eq!(a.time_s, b.time_s);
        let ratio = a.time_s / exact.time_s;
        prop_assert!((0.7..=1.3).contains(&ratio), "noise ratio {ratio}");
    }

    #[test]
    fn counters_are_physical(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::noiseless();
        let c = sim.evaluate(&k, cfg).counters;
        prop_assert!(c.global_work_size() >= 1.0);
        prop_assert!((0.0..=100.0).contains(&c.mem_unit_stalled_pct()));
        prop_assert!((0.0..=100.0).contains(&c.cache_hit_pct()));
        prop_assert!((0.0..=100.0).contains(&c.lds_bank_conflict_pct()));
        prop_assert!(c.fetch_size_kb() >= 0.0);
        prop_assert!(c.valu_insts() >= 0.0);
    }

    #[test]
    fn package_power_is_within_physical_bounds(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::noiseless();
        let p = sim.evaluate(&k, cfg).power;
        prop_assert!(p.package_w() > 3.0, "implausibly low {:?}", p.package_w());
        prop_assert!(p.package_w() < 150.0, "implausibly high {:?}", p.package_w());
        prop_assert!(p.temp_c > 30.0 && p.temp_c < 120.0);
    }

    #[test]
    fn lower_cpu_state_never_increases_power(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::noiseless();
        if let Some(slower) = cfg.cpu.slower() {
            let mut down = cfg;
            down.cpu = slower;
            let p_hi = sim.evaluate(&k, cfg).power.total_w();
            let p_lo = sim.evaluate(&k, down).power.total_w();
            prop_assert!(p_lo <= p_hi * 1.0001, "p_lo {p_lo} vs p_hi {p_hi}");
        }
    }

    #[test]
    fn energy_identity_holds_for_all_inputs(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::default();
        let out = sim.evaluate(&k, cfg);
        prop_assert!((out.energy.total_j() - out.power.total_w() * out.time_s).abs() < 1e-6);
        let parts =
            out.energy.cpu_j + out.energy.gpu_j + out.energy.dram_j + out.energy.other_j;
        prop_assert!((parts - out.energy.total_j()).abs() < 1e-9);
    }

    #[test]
    fn oracle_matches_noiseless_sim(k in any_kernel(), cfg in any_config()) {
        use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
        use gpm_sim::OraclePredictor;
        let sim = ApuSimulator::default();
        let exact = ApuSimulator::noiseless().evaluate_exact(&k, cfg);
        let snap = KernelSnapshot::with_truth(exact.counters, cfg, k);
        let oracle = OraclePredictor::new(&sim);
        let est = oracle.predict(&snap, cfg);
        prop_assert_eq!(est.time_s, exact.time_s);
    }

    #[test]
    fn thermal_solution_is_a_fixed_point(dyn_w in 0.0f64..120.0, leak_nom in 0.0f64..20.0) {
        let p = SimParams::default();
        let st = gpm_sim::thermal::solve(&p, dyn_w, leak_nom);
        let t_check = p.temp_idle_c + p.temp_c_per_w * (dyn_w + st.leak_w);
        prop_assert!((st.temp_c - t_check).abs() < 0.2, "residual {}", (st.temp_c - t_check).abs());
    }
}
