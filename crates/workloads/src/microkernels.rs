//! The four Figure 2 characterization kernels.
//!
//! Each exemplifies one scaling class: `MaxFlops` (compute-bound, SHOC),
//! `readGlobalMemoryCoalesced` (memory-bound, SHOC),
//! `writeCandidates` (peak — shared-cache interference), and `astar`
//! (unscalable).

use gpm_sim::KernelCharacteristics;

/// SHOC's `MaxFlops`: pure ALU throughput, negligible memory traffic
/// (Figure 2(a)). Scales with CUs and GPU clock; insensitive to NB state.
pub fn max_flops() -> KernelCharacteristics {
    KernelCharacteristics::builder("MaxFlops", 30.0)
        .class(gpm_sim::KernelClass::ComputeBound)
        .memory_gb(0.02)
        .cache_hit(0.95)
        .parallel_fraction(0.995)
        .occupancy(0.92)
        .global_work_size(2.0 * (1u32 << 20) as f64)
        .build()
}

/// SHOC's `readGlobalMemoryCoalesced`: streaming reads that saturate DRAM
/// (Figure 2(b)). Performance plateaus from NB2 onward (same DRAM clock).
pub fn read_global_memory_coalesced() -> KernelCharacteristics {
    KernelCharacteristics::builder("readGlobalMemoryCoalesced", 1.6)
        .class(gpm_sim::KernelClass::MemoryBound)
        .memory_gb(1.0)
        .cache_hit(0.10)
        .parallel_fraction(0.97)
        .occupancy(0.45)
        .global_work_size((1u32 << 22) as f64)
        .build()
}

/// `writeCandidates`: a "peak" kernel whose performance and energy optima
/// sit below 8 CUs because more CUs destroy shared-cache locality
/// (Figure 2(c)).
pub fn write_candidates() -> KernelCharacteristics {
    KernelCharacteristics::builder("writeCandidates", 14.0)
        .class(gpm_sim::KernelClass::Peak)
        .memory_gb(2.2)
        .cache_hit(0.96)
        .cache_interference(0.10)
        .parallel_fraction(0.985)
        .occupancy(0.8)
        .global_work_size((1u32 << 21) as f64)
        .build()
}

/// `astar`: serial-latency-dominated graph search; performance is
/// insensitive to hardware configuration, so the lowest GPU configuration
/// is the most energy-efficient (Figure 2(d)).
pub fn astar() -> KernelCharacteristics {
    KernelCharacteristics::builder("astar", 0.15)
        .class(gpm_sim::KernelClass::Unscalable)
        .memory_gb(0.02)
        .cache_hit(0.6)
        .parallel_fraction(0.25)
        .occupancy(0.12)
        .fixed_time(0.018)
        .global_work_size((1u32 << 14) as f64)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{ConfigSpace, CpuPState, GpuDpm, HwConfig};
    use gpm_sim::ApuSimulator;

    /// Finds the energy-optimal (NB, CU) point of Figure 2's sweep.
    fn energy_optimal(kernel: &KernelCharacteristics) -> HwConfig {
        let sim = ApuSimulator::noiseless();
        ConfigSpace::nb_cu_sweep(CpuPState::P7, GpuDpm::Dpm4)
            .iter()
            .min_by(|&a, &b| {
                sim.evaluate(kernel, a)
                    .energy
                    .total_j()
                    .partial_cmp(&sim.evaluate(kernel, b).energy.total_j())
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn max_flops_optimal_at_many_cus_low_nb() {
        let opt = energy_optimal(&max_flops());
        assert_eq!(opt.cu.get(), 8);
        assert!(opt.nb.index() >= 2, "optimal NB was {}", opt.nb);
    }

    #[test]
    fn memory_kernel_needs_nb2_or_better() {
        let opt = energy_optimal(&read_global_memory_coalesced());
        assert!(opt.nb.index() <= 2, "optimal NB was {}", opt.nb);
    }

    #[test]
    fn write_candidates_peaks_below_max_cus() {
        let opt = energy_optimal(&write_candidates());
        assert!(opt.cu.get() < 8, "optimal CU was {}", opt.cu);
    }

    #[test]
    fn astar_optimal_at_bottom_of_sweep() {
        let sim = ApuSimulator::noiseless();
        let k = astar();
        // Unscalable: the lowest GPU configuration wins on energy across
        // the full space (GPU knobs barely move performance).
        let lowest = HwConfig::new(
            CpuPState::P7,
            gpm_hw::NbState::Nb3,
            GpuDpm::Dpm0,
            gpm_hw::CuCount::MIN,
        );
        let e_lowest = sim.evaluate(&k, lowest).energy.total_j();
        let e_highest = sim.evaluate(&k, HwConfig::MAX_PERF).energy.total_j();
        assert!(e_lowest < 0.7 * e_highest);
    }

    #[test]
    fn classes_are_labelled() {
        use gpm_sim::KernelClass;
        assert_eq!(max_flops().class(), KernelClass::ComputeBound);
        assert_eq!(
            read_global_memory_coalesced().class(),
            KernelClass::MemoryBound
        );
        assert_eq!(write_candidates().class(), KernelClass::Peak);
        assert_eq!(astar().class(), KernelClass::Unscalable);
    }
}
