//! The extended tier: ten further well-known benchmarks from the suites
//! the paper studied.
//!
//! The paper examined 73 benchmarks across 9 suites and *sampled* 15 for
//! its figures. This module models ten more of the commonly-cited ones so
//! studies can draw from a broader population than the figure set; they
//! follow the same category statistics (mostly irregular, many
//! input-varying).

use crate::workload::{Category, Workload};
use gpm_sim::{KernelCharacteristics, KernelClass};

fn repeat(k: &KernelCharacteristics, n: usize) -> Vec<KernelCharacteristics> {
    (0..n).map(|_| k.clone()).collect()
}

/// Rodinia `backprop`: two alternating layer kernels, fixed sizes.
pub fn backprop() -> Workload {
    let fwd = KernelCharacteristics::builder("bpnn_layerforward", 12.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.6)
        .cache_hit(0.55)
        .parallel_fraction(0.97)
        .occupancy(0.6)
        .build();
    let adj = KernelCharacteristics::memory_bound("bpnn_adjust_weights", 1.1);
    let mut seq = Vec::new();
    for _ in 0..6 {
        seq.push(fwd.clone());
        seq.push(adj.clone());
    }
    Workload::new("backprop", Category::IrregularRepeating, "(AB)6", seq).with_suite("Rodinia")
}

/// Rodinia `hotspot`: one stencil kernel iterating; compute-leaning.
pub fn hotspot() -> Workload {
    let k = KernelCharacteristics::builder("calculate_temp", 18.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.45)
        .cache_hit(0.82)
        .parallel_fraction(0.985)
        .occupancy(0.75)
        .build();
    Workload::new("hotspot", Category::Regular, "A12", repeat(&k, 12)).with_suite("Rodinia")
}

/// Rodinia `pathfinder`: dynamic-programming rows of shrinking width.
pub fn pathfinder() -> Workload {
    let base = KernelCharacteristics::builder("dynproc_kernel", 8.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.5)
        .cache_hit(0.6)
        .parallel_fraction(0.95)
        .occupancy(0.55)
        .build();
    let seq = (0..10)
        .map(|i| {
            let scale = 1.6 * (0.85f64).powi(i);
            base.with_input_scale(scale).renamed(format!("dynproc_{i}"))
        })
        .collect();
    Workload::new(
        "pathfinder",
        Category::IrregularInputVarying,
        "A1..A10 (shrinking)",
        seq,
    )
    .with_suite("Rodinia")
}

/// Rodinia `gaussian`: elimination steps over a shrinking trailing matrix,
/// alternating a tiny pivot kernel with a large update kernel.
pub fn gaussian() -> Workload {
    let pivot = KernelCharacteristics::builder("Fan1", 0.4)
        .class(KernelClass::Unscalable)
        .memory_gb(0.02)
        .cache_hit(0.8)
        .parallel_fraction(0.4)
        .occupancy(0.15)
        .fixed_time(0.006)
        .build();
    let update = KernelCharacteristics::builder("Fan2", 16.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.5)
        .cache_hit(0.75)
        .parallel_fraction(0.98)
        .occupancy(0.7)
        .build();
    let mut seq = Vec::new();
    for i in 0..7 {
        let scale = (0.8f64).powi(i);
        seq.push(pivot.renamed(format!("Fan1_{i}")));
        seq.push(update.with_input_scale(scale).renamed(format!("Fan2_{i}")));
    }
    Workload::new(
        "gaussian",
        Category::IrregularInputVarying,
        "(ab)7 (shrinking)",
        seq,
    )
    .with_suite("Rodinia")
}

/// Rodinia `nw` (Needleman-Wunsch): anti-diagonals growing then shrinking.
pub fn needleman_wunsch() -> Workload {
    let base = KernelCharacteristics::builder("needle_kernel", 6.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(0.7)
        .cache_hit(0.4)
        .parallel_fraction(0.93)
        .occupancy(0.45)
        .fixed_time(0.008)
        .build();
    let scales = [0.3, 0.8, 1.5, 2.2, 2.6, 2.2, 1.5, 0.8, 0.3];
    let seq = scales
        .iter()
        .enumerate()
        .map(|(i, &s)| base.with_input_scale(s).renamed(format!("needle_{i}")))
        .collect();
    Workload::new(
        "nw",
        Category::IrregularInputVarying,
        "A1..A9 (diamond)",
        seq,
    )
    .with_suite("Rodinia")
}

/// Rodinia `streamcluster`: distance evaluations, memory-streaming.
pub fn streamcluster() -> Workload {
    let k = KernelCharacteristics::memory_bound("pgain_kernel", 1.6);
    Workload::new("streamcluster", Category::Regular, "A14", repeat(&k, 14)).with_suite("Rodinia")
}

/// Rodinia `cfd`: unstructured-mesh flux computation, three kernels per
/// timestep.
pub fn cfd() -> Workload {
    let flux = KernelCharacteristics::builder("compute_flux", 22.0)
        .class(KernelClass::Balanced)
        .memory_gb(1.3)
        .cache_hit(0.45)
        .parallel_fraction(0.975)
        .occupancy(0.6)
        .build();
    let step = KernelCharacteristics::compute_bound("time_step", 9.0);
    let rk = KernelCharacteristics::memory_bound("cuda_rk", 0.8);
    let mut seq = Vec::new();
    for _ in 0..4 {
        seq.extend([flux.clone(), step.clone(), rk.clone()]);
    }
    Workload::new("cfd", Category::IrregularRepeating, "(ABC)4", seq).with_suite("Rodinia")
}

/// Rodinia `bfs`: level-synchronous traversal with a frontier bulge.
pub fn bfs_rodinia() -> Workload {
    let base = KernelCharacteristics::builder("Kernel", 5.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(0.6)
        .cache_hit(0.3)
        .parallel_fraction(0.9)
        .occupancy(0.35)
        .fixed_time(0.009)
        .build();
    let scales = [0.15, 0.4, 1.1, 2.5, 3.0, 1.8, 0.6, 0.2];
    let seq = scales
        .iter()
        .enumerate()
        .map(|(i, &s)| base.with_input_scale(s).renamed(format!("bfs_level{i}")))
        .collect();
    Workload::new(
        "bfs-rodinia",
        Category::IrregularInputVarying,
        "A1..A8 (frontier)",
        seq,
    )
    .with_suite("Rodinia")
}

/// SHOC `FFT`: butterfly stages, compute-heavy with strided access.
pub fn fft() -> Workload {
    let k = KernelCharacteristics::builder("fft1D_512", 26.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.6)
        .cache_hit(0.7)
        .parallel_fraction(0.985)
        .occupancy(0.8)
        .lds_conflict(0.25)
        .build();
    Workload::new("fft", Category::Regular, "A10", repeat(&k, 10)).with_suite("SHOC")
}

/// SHOC `Reduction`: bandwidth-bound tree reduction with a serial tail.
pub fn reduction() -> Workload {
    let big = KernelCharacteristics::memory_bound("reduce_stage1", 1.8);
    let tail = KernelCharacteristics::builder("reduce_tail", 0.1)
        .class(KernelClass::Unscalable)
        .memory_gb(0.01)
        .cache_hit(0.9)
        .parallel_fraction(0.3)
        .occupancy(0.1)
        .fixed_time(0.004)
        .build();
    let mut seq = Vec::new();
    for _ in 0..6 {
        seq.push(big.clone());
        seq.push(tail.clone());
    }
    Workload::new("reduction", Category::IrregularRepeating, "(AB)6", seq).with_suite("SHOC")
}

/// The extended tier: ten additional modelled benchmarks.
pub fn extended_suite() -> Vec<Workload> {
    vec![
        backprop(),
        hotspot(),
        pathfinder(),
        gaussian(),
        needleman_wunsch(),
        streamcluster(),
        cfd(),
        bfs_rodinia(),
        fft(),
        reduction(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::HwConfig;
    use gpm_sim::ApuSimulator;

    #[test]
    fn extended_suite_has_ten_unique_benchmarks() {
        let s = extended_suite();
        assert_eq!(s.len(), 10);
        let mut names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn no_name_collision_with_the_figure_suite() {
        let figure: Vec<String> = crate::suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        for w in extended_suite() {
            assert!(
                !figure.contains(&w.name().to_string()),
                "{} collides",
                w.name()
            );
        }
    }

    #[test]
    fn population_statistics_stay_paper_like() {
        // Combined 25 benchmarks: at most ~1/3 regular, like the paper's
        // "75% irregular" population.
        let mut all = crate::suite();
        all.extend(extended_suite());
        let regular = all
            .iter()
            .filter(|w| w.category() == Category::Regular)
            .count() as f64;
        assert!(
            regular / all.len() as f64 <= 0.34,
            "regular fraction too high"
        );
    }

    #[test]
    fn extended_kernels_are_simulable_in_sane_ranges() {
        let sim = ApuSimulator::noiseless();
        for w in extended_suite() {
            for k in w.kernels() {
                let t = sim.evaluate(k, HwConfig::MAX_PERF).time_s;
                assert!(
                    t > 5e-4 && t < 2.0,
                    "{} kernel {} time {t}",
                    w.name(),
                    k.name()
                );
            }
        }
    }

    #[test]
    fn frontier_benchmarks_have_phase_transitions() {
        let sim = ApuSimulator::noiseless();
        for w in [bfs_rodinia(), needleman_wunsch()] {
            let outs: Vec<f64> = w
                .kernels()
                .iter()
                .map(|k| {
                    let o = sim.evaluate(k, HwConfig::MAX_PERF);
                    o.throughput()
                })
                .collect();
            let max = outs.iter().cloned().fold(f64::MIN, f64::max);
            let min = outs.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min > 1.5, "{} spread {max}/{min}", w.name());
        }
    }
}
