//! The 15-benchmark evaluation suite (Table IV).
//!
//! Each function rebuilds one benchmark's kernel-invocation sequence with
//! the execution pattern the paper reports and kernel characteristics that
//! reproduce its documented behaviour: Spmv's high→low throughput
//! transitions, kmeans' low→high transition, lbm's peak kernels (the 51%
//! GPU-energy-savings outlier of Figure 10), hybridsort's input-varying
//! `mergeSortPass` iterations, and so on.

use crate::workload::{Category, Workload};
use gpm_sim::{KernelCharacteristics, KernelClass};

fn repeat(k: &KernelCharacteristics, n: usize) -> Vec<KernelCharacteristics> {
    (0..n).map(|_| k.clone()).collect()
}

/// `mandelbulbGPU` (Phoronix): regular, `A20`, one compute-bound kernel.
pub fn mandelbulb_gpu() -> Workload {
    let a = KernelCharacteristics::compute_bound("mandelbulb", 22.0);
    Workload::new("mandelbulbGPU", Category::Regular, "A20", repeat(&a, 20)).with_suite("Phoronix")
}

/// `NBody` (AMD APP SDK): regular, `A10`, compute-bound.
pub fn nbody() -> Workload {
    let a = KernelCharacteristics::compute_bound("nbody_step", 36.0);
    Workload::new("NBody", Category::Regular, "A10", repeat(&a, 10)).with_suite("AMD APP SDK")
}

/// `lbm` (Parboil): regular, `A10`, a *peak* kernel — its best performance
/// and energy sit below the maximum CU count, which is why it shows the
/// largest GPU energy savings (51%) in Figure 10.
pub fn lbm() -> Workload {
    let a = KernelCharacteristics::builder("lbm_collide_stream", 16.0)
        .class(KernelClass::Peak)
        .memory_gb(2.4)
        .cache_hit(0.97)
        .cache_interference(0.105)
        .parallel_fraction(0.985)
        .occupancy(0.78)
        .global_work_size((1u32 << 21) as f64)
        .build();
    Workload::new("lbm", Category::Regular, "A10", repeat(&a, 10)).with_suite("Parboil")
}

/// `EigenValue` (AMD APP SDK): irregular with repeating pattern `(AB)5`.
pub fn eigenvalue() -> Workload {
    let a = KernelCharacteristics::compute_bound("calNumEigenInterval", 24.0);
    let b = KernelCharacteristics::memory_bound("recalculateEigenIntervals", 1.4);
    let mut seq = Vec::new();
    for _ in 0..5 {
        seq.push(a.clone());
        seq.push(b.clone());
    }
    Workload::new("EigenValue", Category::IrregularRepeating, "(AB)5", seq)
        .with_suite("AMD APP SDK")
}

/// `XSBench` (Exascale proxy): irregular with repeating pattern `(ABC)2`,
/// long kernels (they let MPC afford the full horizon, Figure 15).
pub fn xsbench() -> Workload {
    let a = KernelCharacteristics::builder("xs_lookup", 48.0)
        .class(KernelClass::Balanced)
        .memory_gb(2.0)
        .cache_hit(0.45)
        .parallel_fraction(0.98)
        .occupancy(0.6)
        .build();
    let b = KernelCharacteristics::memory_bound("grid_search", 3.2);
    let c = KernelCharacteristics::compute_bound("xs_accumulate", 40.0);
    let mut seq = Vec::new();
    for _ in 0..2 {
        seq.extend([a.clone(), b.clone(), c.clone()]);
    }
    Workload::new("XSBench", Category::IrregularRepeating, "(ABC)2", seq).with_suite("Exascale")
}

/// `Spmv` (modified SHOC): irregular non-repeating `A10 B10 C10` — three
/// sparse matrix-vector algorithms, transitioning from high- to
/// low-throughput phases (Figure 3).
pub fn spmv() -> Workload {
    let a = KernelCharacteristics::builder("spmv_csr_vector", 26.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.35)
        .cache_hit(0.85)
        .parallel_fraction(0.99)
        .occupancy(0.85)
        .build();
    let b = KernelCharacteristics::builder("spmv_csr_scalar", 12.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.9)
        .cache_hit(0.5)
        .parallel_fraction(0.97)
        .occupancy(0.55)
        .build();
    let c = KernelCharacteristics::builder("spmv_ellpackr", 3.5)
        .class(KernelClass::MemoryBound)
        .memory_gb(1.6)
        .cache_hit(0.2)
        .parallel_fraction(0.96)
        .occupancy(0.4)
        .build();
    let mut seq = repeat(&a, 10);
    seq.extend(repeat(&b, 10));
    seq.extend(repeat(&c, 10));
    Workload::new("Spmv", Category::IrregularNonRepeating, "A10B10C10", seq).with_suite("SHOC")
}

/// `kmeans` (Rodinia): irregular non-repeating `A B20` — a long
/// low-throughput `swap` kernel followed by 20 high-throughput `kmeans`
/// iterations (the low→high transition of Figure 3).
pub fn kmeans() -> Workload {
    let swap = KernelCharacteristics::builder("kmeans_swap", 0.8)
        .class(KernelClass::Unscalable)
        .memory_gb(0.5)
        .cache_hit(0.3)
        .parallel_fraction(0.45)
        .occupancy(0.2)
        .fixed_time(0.10)
        .build();
    let km = KernelCharacteristics::compute_bound("kmeans_kernel_c", 20.0);
    let mut seq = vec![swap];
    seq.extend(repeat(&km, 20));
    Workload::new("kmeans", Category::IrregularNonRepeating, "AB20", seq).with_suite("Rodinia")
}

/// `swat` (OpenDwarfs): Smith-Waterman; the same alignment kernel invoked
/// repeatedly with growing/shrinking anti-diagonals (input-varying).
pub fn swat() -> Workload {
    let base = KernelCharacteristics::builder("swat_align", 14.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.8)
        .cache_hit(0.55)
        .parallel_fraction(0.96)
        .occupancy(0.5)
        .build();
    let scales = [0.4, 0.8, 1.3, 1.9, 2.3, 2.6, 2.3, 1.9, 1.3, 0.8, 0.5, 0.3];
    let seq = scales
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            base.with_input_scale(s)
                .renamed(format!("swat_align_{}", i + 1))
        })
        .collect();
    Workload::new(
        "swat",
        Category::IrregularInputVarying,
        "A1..A12 (varying)",
        seq,
    )
    .with_suite("OpenDwarfs")
}

/// `color` (Pannotia): graph coloring; per-iteration work shrinks as the
/// remaining uncolored frontier decays (input-varying).
pub fn color() -> Workload {
    let base = KernelCharacteristics::builder("color_kernel", 9.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(1.1)
        .cache_hit(0.25)
        .parallel_fraction(0.95)
        .occupancy(0.4)
        .build();
    let seq = (0..14)
        .map(|i| {
            let scale = 2.2 * (0.78f64).powi(i);
            base.with_input_scale(scale.max(0.1))
                .renamed(format!("color_it{}", i + 1))
        })
        .collect();
    Workload::new(
        "color",
        Category::IrregularInputVarying,
        "A1..A14 (decaying)",
        seq,
    )
    .with_suite("Pannotia")
}

/// `pb-bfs` (Parboil): breadth-first search; frontier grows from a few
/// nodes to most of the graph — a low→high throughput shape like kmeans.
pub fn pb_bfs() -> Workload {
    let base = KernelCharacteristics::builder("bfs_level", 6.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(0.8)
        .cache_hit(0.3)
        .parallel_fraction(0.9)
        .occupancy(0.35)
        .fixed_time(0.004)
        .build();
    let scales = [0.1, 0.2, 0.5, 1.2, 2.4, 3.2, 2.8, 1.6, 0.7, 0.3];
    let seq = scales
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            base.with_input_scale(s)
                .renamed(format!("bfs_level_{}", i + 1))
        })
        .collect();
    Workload::new(
        "pb-bfs",
        Category::IrregularInputVarying,
        "A1..A10 (frontier)",
        seq,
    )
    .with_suite("Parboil")
}

/// `mis` (Pannotia): maximal independent set; work decays as nodes drop
/// out each round (input-varying).
pub fn mis() -> Workload {
    let base = KernelCharacteristics::builder("mis_kernel", 11.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.9)
        .cache_hit(0.4)
        .parallel_fraction(0.94)
        .occupancy(0.45)
        .build();
    let seq = (0..12)
        .map(|i| {
            let scale = 1.9 * (0.72f64).powi(i);
            base.with_input_scale(scale.max(0.08))
                .renamed(format!("mis_it{}", i + 1))
        })
        .collect();
    Workload::new(
        "mis",
        Category::IrregularInputVarying,
        "A1..A12 (decaying)",
        seq,
    )
    .with_suite("Pannotia")
}

/// `srad` (Rodinia): speckle-reducing anisotropic diffusion; two kernels
/// alternating, with input statistics drifting across iterations — the
/// paper's worst case for MPC under misprediction.
pub fn srad() -> Workload {
    let k1 = KernelCharacteristics::builder("srad_cuda_1", 15.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.5)
        .cache_hit(0.8)
        .parallel_fraction(0.985)
        .occupancy(0.75)
        .build();
    let k2 = KernelCharacteristics::builder("srad_cuda_2", 7.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(1.1)
        .cache_hit(0.35)
        .parallel_fraction(0.97)
        .occupancy(0.5)
        .build();
    let mut seq = Vec::new();
    for i in 0..8 {
        // Mild drift, with a sharp change in the final phases that the
        // binned-signature predictor struggles with.
        let scale = if i < 6 { 1.0 + 0.06 * i as f64 } else { 0.35 };
        seq.push(
            k1.with_input_scale(scale)
                .renamed(format!("srad_cuda_1_{}", i + 1)),
        );
        seq.push(
            k2.with_input_scale(scale)
                .renamed(format!("srad_cuda_2_{}", i + 1)),
        );
    }
    Workload::new(
        "srad",
        Category::IrregularInputVarying,
        "(AB)8 (drifting)",
        seq,
    )
    .with_suite("Rodinia")
}

/// `lulesh` (Exascale proxy): shock hydrodynamics; several kernels per
/// timestep with element counts varying across regions.
pub fn lulesh() -> Workload {
    let force = KernelCharacteristics::compute_bound("CalcForce", 28.0);
    let constraint = KernelCharacteristics::builder("CalcConstraints", 9.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.7)
        .cache_hit(0.5)
        .parallel_fraction(0.96)
        .occupancy(0.55)
        .build();
    let update = KernelCharacteristics::memory_bound("UpdateVolumes", 1.5);
    let mut seq = Vec::new();
    for i in 0..5 {
        let scale = [1.0, 1.3, 0.8, 1.6, 0.6][i];
        seq.push(
            force
                .with_input_scale(scale)
                .renamed(format!("CalcForce_{}", i + 1)),
        );
        seq.push(
            constraint
                .with_input_scale(scale)
                .renamed(format!("CalcConstraints_{}", i + 1)),
        );
        seq.push(
            update
                .with_input_scale(scale)
                .renamed(format!("UpdateVolumes_{}", i + 1)),
        );
    }
    Workload::new(
        "lulesh",
        Category::IrregularInputVarying,
        "(ABC)5 (varying)",
        seq,
    )
    .with_suite("Exascale")
}

/// `lud` (Rodinia): LU decomposition; per-step work shrinks as the active
/// submatrix contracts — a high→low throughput transition like Spmv.
pub fn lud() -> Workload {
    let base = KernelCharacteristics::builder("lud_internal", 20.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.4)
        .cache_hit(0.75)
        .parallel_fraction(0.98)
        .occupancy(0.7)
        .build();
    let seq = (0..14)
        .map(|i| {
            let scale = 2.0 * (0.76f64).powi(i);
            base.with_input_scale(scale.max(0.05))
                .renamed(format!("lud_step{}", i + 1))
        })
        .collect();
    Workload::new(
        "lud",
        Category::IrregularInputVarying,
        "A1..A14 (shrinking)",
        seq,
    )
    .with_suite("Rodinia")
}

/// `hybridsort` (Rodinia): `A B C D E F1..F9 G` — six distinct kernels
/// with `mergeSortPass` iterating nine times on different inputs
/// (Table II). Every invocation differs in throughput, defeating
/// one-kernel-lookback prediction.
pub fn hybridsort() -> Workload {
    let bucket_count = KernelCharacteristics::memory_bound("bucketcount", 1.2);
    let bucket_prefix = KernelCharacteristics::builder("bucketprefix", 4.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.3)
        .cache_hit(0.6)
        .parallel_fraction(0.9)
        .occupancy(0.4)
        .build();
    let bucket_sort = KernelCharacteristics::memory_bound("bucketsort", 1.8);
    let histogram = KernelCharacteristics::compute_bound("histogram1024", 8.0);
    let prefix_sum = KernelCharacteristics::builder("prefixsum", 1.0)
        .class(KernelClass::Unscalable)
        .memory_gb(0.05)
        .cache_hit(0.7)
        .parallel_fraction(0.5)
        .occupancy(0.2)
        .fixed_time(0.012)
        .build();
    let merge = KernelCharacteristics::builder("mergeSortPass", 10.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.9)
        .cache_hit(0.55)
        .parallel_fraction(0.95)
        .occupancy(0.5)
        .build();
    let merge_pack = KernelCharacteristics::memory_bound("mergepack", 0.9);

    let mut seq = vec![
        bucket_count,
        bucket_prefix,
        bucket_sort,
        histogram,
        prefix_sum,
    ];
    // Non-monotonic input sizes, as in Figure 3's hybridsort trace where
    // successive mergeSortPass invocations jump between throughput levels.
    let merge_scales = [2.6, 0.35, 1.9, 0.28, 1.3, 0.5, 0.9, 0.2, 0.14];
    for (i, &s) in merge_scales.iter().enumerate() {
        seq.push(
            merge
                .with_input_scale(s)
                .renamed(format!("mergeSortPass_F{}", i + 1)),
        );
    }
    seq.push(merge_pack);
    Workload::new(
        "hybridsort",
        Category::IrregularInputVarying,
        "ABCDEF1..F9G",
        seq,
    )
    .with_suite("Rodinia")
}

/// The full 15-benchmark suite, in the order of the paper's figures.
pub fn suite() -> Vec<Workload> {
    vec![
        mandelbulb_gpu(),
        nbody(),
        lbm(),
        eigenvalue(),
        xsbench(),
        spmv(),
        kmeans(),
        swat(),
        color(),
        pb_bfs(),
        mis(),
        srad(),
        lulesh(),
        lud(),
        hybridsort(),
    ]
}

/// Looks a workload up by its Table IV name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::HwConfig;
    use gpm_sim::ApuSimulator;

    #[test]
    fn suite_has_fifteen_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 15);
        let mut names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "benchmark names must be unique");
    }

    #[test]
    fn categories_match_table_iv() {
        let expect = [
            ("mandelbulbGPU", Category::Regular),
            ("NBody", Category::Regular),
            ("lbm", Category::Regular),
            ("EigenValue", Category::IrregularRepeating),
            ("XSBench", Category::IrregularRepeating),
            ("Spmv", Category::IrregularNonRepeating),
            ("kmeans", Category::IrregularNonRepeating),
            ("swat", Category::IrregularInputVarying),
            ("color", Category::IrregularInputVarying),
            ("pb-bfs", Category::IrregularInputVarying),
            ("mis", Category::IrregularInputVarying),
            ("srad", Category::IrregularInputVarying),
            ("lulesh", Category::IrregularInputVarying),
            ("lud", Category::IrregularInputVarying),
            ("hybridsort", Category::IrregularInputVarying),
        ];
        for (name, cat) in expect {
            assert_eq!(workload_by_name(name).unwrap().category(), cat, "{name}");
        }
    }

    #[test]
    fn execution_patterns_match_table_ii() {
        assert_eq!(workload_by_name("Spmv").unwrap().len(), 30);
        assert_eq!(workload_by_name("kmeans").unwrap().len(), 21);
        let hs = workload_by_name("hybridsort").unwrap();
        assert_eq!(hs.len(), 15); // A..E + F1..F9 + G
        assert_eq!(hs.distinct_kernels(), 15);
        assert_eq!(
            workload_by_name("mandelbulbGPU")
                .unwrap()
                .distinct_kernels(),
            1
        );
    }

    fn throughputs(w: &Workload) -> Vec<f64> {
        let sim = ApuSimulator::noiseless();
        w.kernels()
            .iter()
            .map(|k| {
                let out = sim.evaluate(k, HwConfig::MAX_PERF);
                out.throughput()
            })
            .collect()
    }

    #[test]
    fn spmv_transitions_high_to_low() {
        // Figure 3: Spmv moves from high- to low-throughput phases.
        let t = throughputs(&spmv());
        let first = t[..10].iter().sum::<f64>() / 10.0;
        let last = t[20..].iter().sum::<f64>() / 10.0;
        assert!(first > 2.0 * last, "first {first}, last {last}");
    }

    #[test]
    fn kmeans_transitions_low_to_high() {
        let t = throughputs(&kmeans());
        assert!(t[0] < 0.5 * t[1], "swap {} vs kmeans {}", t[0], t[1]);
    }

    #[test]
    fn hybridsort_throughput_is_diverse() {
        let t = throughputs(&hybridsort());
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 4.0, "hybridsort spread {max}/{min}");
    }

    #[test]
    fn regular_benchmarks_have_constant_throughput() {
        for name in ["mandelbulbGPU", "NBody", "lbm"] {
            let t = throughputs(&workload_by_name(name).unwrap());
            let mean = t.iter().sum::<f64>() / t.len() as f64;
            for v in &t {
                assert!((v / mean - 1.0).abs() < 0.05, "{name} throughput varies");
            }
        }
    }

    #[test]
    fn kernel_times_are_in_governable_range() {
        // Times far outside [1 ms, 1 s] would make overhead modelling
        // meaningless.
        let sim = ApuSimulator::noiseless();
        for w in suite() {
            for k in w.kernels() {
                let t = sim.evaluate(k, HwConfig::MAX_PERF).time_s;
                assert!(t > 5e-4, "{} kernel {} too short: {t}", w.name(), k.name());
                assert!(t < 2.0, "{} kernel {} too long: {t}", w.name(), k.name());
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload_by_name("nope").is_none());
    }
}
