//! Seeded random workload generation.
//!
//! The paper studies 73 benchmarks and samples 15 with representative
//! behaviour (75% irregular, 44% of kernels input-varying). This generator
//! produces arbitrarily many *additional* applications with the same
//! statistical mix, for two uses:
//!
//! * **Generalization studies** — the Random Forest trains on the fixed
//!   15-benchmark suite; generated applications contain kernels the model
//!   never saw (the `generalization` binary).
//! * **Fuzzing governors** — property tests can drive every policy over
//!   thousands of applications with known invariants.

use crate::workload::{Category, Workload};
use gpm_sim::KernelCharacteristics;
#[cfg(test)]
use gpm_sim::KernelClass;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Shape parameters of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorParams {
    /// Minimum kernel invocations per application.
    pub min_kernels: usize,
    /// Maximum kernel invocations per application.
    pub max_kernels: usize,
    /// Probability the application is regular (single repeating kernel);
    /// the paper's population is ~25% regular.
    pub regular_fraction: f64,
    /// Probability an irregular application's kernels vary with input
    /// (~44% of the paper's kernels do).
    pub input_varying_fraction: f64,
}

impl Default for GeneratorParams {
    fn default() -> GeneratorParams {
        GeneratorParams {
            min_kernels: 6,
            max_kernels: 28,
            regular_fraction: 0.25,
            input_varying_fraction: 0.44,
        }
    }
}

/// A random kernel drawn from the four Figure 2 scaling classes.
fn random_kernel(rng: &mut StdRng, name: String) -> KernelCharacteristics {
    match rng.gen_range(0..4) {
        0 => KernelCharacteristics::compute_bound(name, rng.gen_range(8.0..45.0)),
        1 => KernelCharacteristics::memory_bound(name, rng.gen_range(0.4..2.5)),
        2 => KernelCharacteristics::peak(name, rng.gen_range(6.0..18.0)),
        _ => KernelCharacteristics::unscalable(name, rng.gen_range(0.01..0.06)),
    }
}

/// Generates one application with the paper's population statistics.
///
/// Deterministic per `(params, seed)`.
pub fn generate_workload(params: &GeneratorParams, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(params.min_kernels..=params.max_kernels);
    let tag = format!("gen{seed:x}");

    if rng.gen_bool(params.regular_fraction.clamp(0.0, 1.0)) {
        // Regular: one kernel, n iterations.
        let k = random_kernel(&mut rng, format!("{tag}_k"));
        let seq = (0..n).map(|_| k.clone()).collect();
        return Workload::new(tag.clone(), Category::Regular, format!("A{n}"), seq);
    }

    if rng.gen_bool(params.input_varying_fraction.clamp(0.0, 1.0)) {
        // Input-varying: one or two base kernels, scales wandering.
        let bases: Vec<KernelCharacteristics> = (0..rng.gen_range(1..=2))
            .map(|b| random_kernel(&mut rng, format!("{tag}_b{b}")))
            .collect();
        let mut scale: f64 = rng.gen_range(0.5..2.0);
        let seq = (0..n)
            .map(|i| {
                scale = (scale * rng.gen_range(0.5..1.9)).clamp(0.05, 6.0);
                bases[i % bases.len()]
                    .with_input_scale(scale)
                    .renamed(format!("{tag}_v{i}"))
            })
            .collect();
        return Workload::new(
            tag.clone(),
            Category::IrregularInputVarying,
            format!("A1..A{n} (generated)"),
            seq,
        );
    }

    // Irregular with a (possibly repeating) multi-kernel pattern.
    let distinct = rng.gen_range(2..=4.min(n));
    let pool: Vec<KernelCharacteristics> = (0..distinct)
        .map(|k| random_kernel(&mut rng, format!("{tag}_p{k}")))
        .collect();
    let repeating = rng.gen_bool(0.5);
    let seq: Vec<KernelCharacteristics> = if repeating {
        (0..n).map(|i| pool[i % distinct].clone()).collect()
    } else {
        // Phase-structured: consecutive blocks of each kernel.
        let block = n.div_ceil(distinct);
        (0..n)
            .map(|i| pool[(i / block).min(distinct - 1)].clone())
            .collect()
    };
    let category = if repeating {
        Category::IrregularRepeating
    } else {
        Category::IrregularNonRepeating
    };
    let pattern = if repeating {
        format!(
            "({})^{}",
            "AB CD".split_whitespace().next().unwrap_or("AB"),
            n / distinct
        )
    } else {
        format!("{distinct} phases x {block} ", block = n.div_ceil(distinct))
    };
    Workload::new(tag, category, pattern, seq)
}

/// Generates a population of `count` applications with seeds
/// `base_seed..base_seed + count`.
pub fn generate_population(
    params: &GeneratorParams,
    base_seed: u64,
    count: usize,
) -> Vec<Workload> {
    (0..count as u64)
        .map(|i| generate_workload(params, base_seed + i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GeneratorParams::default();
        let a = generate_workload(&p, 42);
        let b = generate_workload(&p, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = GeneratorParams::default();
        let a = generate_workload(&p, 1);
        let b = generate_workload(&p, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn sizes_respect_bounds() {
        let p = GeneratorParams {
            min_kernels: 5,
            max_kernels: 9,
            ..GeneratorParams::default()
        };
        for seed in 0..50 {
            let w = generate_workload(&p, seed);
            assert!(
                (5..=9).contains(&w.len()),
                "seed {seed}: {} kernels",
                w.len()
            );
        }
    }

    #[test]
    fn population_matches_requested_statistics_roughly() {
        let p = GeneratorParams::default();
        let pop = generate_population(&p, 1000, 300);
        assert_eq!(pop.len(), 300);
        let regular = pop
            .iter()
            .filter(|w| w.category() == Category::Regular)
            .count() as f64
            / 300.0;
        assert!((regular - 0.25).abs() < 0.10, "regular fraction {regular}");
        let varying = pop
            .iter()
            .filter(|w| w.category() == Category::IrregularInputVarying)
            .count() as f64
            / 300.0;
        assert!(
            varying > 0.15 && varying < 0.55,
            "input-varying fraction {varying}"
        );
    }

    #[test]
    fn generated_names_are_unique_across_population() {
        let p = GeneratorParams::default();
        let pop = generate_population(&p, 7, 40);
        let mut names: Vec<&str> = pop.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn generated_kernels_are_simulable() {
        use gpm_hw::HwConfig;
        use gpm_sim::ApuSimulator;
        let sim = ApuSimulator::default();
        let p = GeneratorParams::default();
        for seed in 0..20 {
            let w = generate_workload(&p, seed);
            for k in w.kernels() {
                let out = sim.evaluate(k, HwConfig::FAIL_SAFE);
                assert!(
                    out.time_s > 0.0 && out.time_s < 5.0,
                    "{}: {}",
                    w.name(),
                    k.name()
                );
                assert!(out.power.total_w() > 0.0);
            }
        }
    }

    #[test]
    fn classes_are_represented() {
        let p = GeneratorParams::default();
        let pop = generate_population(&p, 99, 60);
        let mut classes = std::collections::HashSet::new();
        for w in &pop {
            for k in w.kernels() {
                classes.insert(format!("{:?}", k.class()));
            }
        }
        assert!(classes.len() >= 3, "only {classes:?}");
    }

    #[test]
    fn used_class_labels_match_shapes() {
        // Spot check: generated unscalable kernels really are latency-bound.
        let p = GeneratorParams::default();
        for seed in 0..30 {
            let w = generate_workload(&p, seed);
            for k in w.kernels() {
                if k.class() == KernelClass::Unscalable {
                    assert!(k.fixed_time_s() > 0.0);
                }
            }
        }
    }
}
