//! Synthetic re-creations of the paper's GPGPU workloads (Tables II & IV).
//!
//! The paper evaluates 15 benchmarks sampled from 9 suites, categorized by
//! kernel execution pattern: regular (one kernel iterating), irregular with
//! a repeating pattern, irregular with a non-repeating pattern, and
//! irregular with kernels that vary with input. This crate rebuilds each
//! benchmark as a sequence of [`KernelCharacteristics`] whose scaling
//! classes and inter-kernel throughput phases reproduce the behaviours the
//! paper's evaluation hinges on (Figures 3–4): Spmv's high→low throughput
//! transitions, kmeans' low→high transition, hybridsort's input-varying
//! `mergeSortPass`, and so on.
//!
//! [`microkernels`] additionally provides the four Figure 2
//! characterization kernels (`MaxFlops`, `readGlobalMemoryCoalesced`,
//! `writeCandidates`, `astar`), and [`generator`] synthesizes arbitrarily
//! many further applications with the paper's population statistics for
//! generalization studies and governor fuzzing.
//!
//! # Examples
//!
//! ```
//! use gpm_workloads::{suite, Category};
//!
//! let all = suite();
//! assert_eq!(all.len(), 15);
//! let spmv = all.iter().find(|w| w.name() == "Spmv").unwrap();
//! assert_eq!(spmv.category(), Category::IrregularNonRepeating);
//! assert_eq!(spmv.len(), 30); // A10 B10 C10
//! ```

pub mod extended;
pub mod generator;
pub mod microkernels;
pub mod suite;
pub mod workload;

pub use extended::extended_suite;
pub use generator::{generate_population, generate_workload, GeneratorParams};
pub use microkernels::{astar, max_flops, read_global_memory_coalesced, write_candidates};
pub use suite::{suite, workload_by_name};
pub use workload::{Category, Workload};

/// Re-export: the kernel description type workloads are built from.
pub use gpm_sim::KernelCharacteristics;
