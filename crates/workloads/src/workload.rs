//! The workload type: a named, categorized kernel-invocation sequence.

use gpm_sim::KernelCharacteristics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's four benchmark categories (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// A single kernel iterating multiple times (e.g. `A20`).
    Regular,
    /// Multiple kernels in a repeating pattern (e.g. `(AB)5`).
    IrregularRepeating,
    /// Multiple kernels, non-repeating pattern (e.g. `A10 B10 C10`).
    IrregularNonRepeating,
    /// Iterations of kernels that vary with input arguments.
    IrregularInputVarying,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Regular => "regular",
            Category::IrregularRepeating => "irregular w/ repeating pattern",
            Category::IrregularNonRepeating => "irregular w/ non-repeating pattern",
            Category::IrregularInputVarying => "irregular w/ kernels varying with input",
        };
        f.write_str(s)
    }
}

/// A benchmark: an ordered sequence of kernel invocations.
///
/// # Examples
///
/// ```
/// use gpm_sim::KernelCharacteristics;
/// use gpm_workloads::{Category, Workload};
///
/// let k = KernelCharacteristics::compute_bound("A", 10.0);
/// let w = Workload::new("toy", Category::Regular, "A3", vec![k.clone(), k.clone(), k]);
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.pattern(), "A3");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    category: Category,
    pattern: String,
    source_suite: String,
    kernels: Vec<KernelCharacteristics>,
    /// Host CPU-phase duration preceding each kernel launch, seconds.
    /// Empty = back-to-back kernels (the paper's worst-case assumption).
    #[serde(default)]
    cpu_phases_s: Vec<f64>,
}

impl Workload {
    /// Creates a workload from its invocation sequence.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(
        name: impl Into<String>,
        category: Category,
        pattern: impl Into<String>,
        kernels: Vec<KernelCharacteristics>,
    ) -> Workload {
        assert!(
            !kernels.is_empty(),
            "a workload needs at least one kernel invocation"
        );
        Workload {
            name: name.into(),
            category,
            pattern: pattern.into(),
            source_suite: String::new(),
            kernels,
            cpu_phases_s: Vec::new(),
        }
    }

    /// Sets the host CPU-phase durations preceding each kernel launch
    /// (Figure 1's CPU/data-transfer segments). A governor's optimization
    /// overhead can hide inside these phases (Section VI-E: "GPGPU
    /// application kernels may be separated by CPU phases with an
    /// available CPU, which can hide the MPC overheads").
    ///
    /// # Panics
    ///
    /// Panics if `phases` is non-empty and its length differs from the
    /// kernel count.
    pub fn with_cpu_phases(mut self, phases: Vec<f64>) -> Workload {
        assert!(
            phases.is_empty() || phases.len() == self.kernels.len(),
            "need one CPU phase per kernel invocation"
        );
        self.cpu_phases_s = phases;
        self
    }

    /// CPU-phase time preceding the kernel at `position`, seconds
    /// (0 when phases are not modelled).
    pub fn cpu_phase_s(&self, position: usize) -> f64 {
        self.cpu_phases_s.get(position).copied().unwrap_or(0.0)
    }

    /// Total CPU-phase time across the application, seconds.
    pub fn total_cpu_phase_s(&self) -> f64 {
        self.cpu_phases_s.iter().sum()
    }

    /// Annotates the benchmark suite the workload models (Table IV's
    /// "Benchmark Suite" column).
    pub fn with_suite(mut self, source_suite: impl Into<String>) -> Workload {
        self.source_suite = source_suite.into();
        self
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table IV category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Human-readable execution pattern (Table IV's regex column).
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Source suite the original benchmark came from.
    pub fn source_suite(&self) -> &str {
        &self.source_suite
    }

    /// The invocation sequence.
    pub fn kernels(&self) -> &[KernelCharacteristics] {
        &self.kernels
    }

    /// Number of kernel invocations (`N` in the paper).
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Workloads are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of *distinct* kernel names in the sequence.
    pub fn distinct_kernels(&self) -> usize {
        let mut names: Vec<&str> = self.kernels.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({} invocations)",
            self.name,
            self.category,
            self.pattern,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Workload {
        let a = KernelCharacteristics::compute_bound("A", 10.0);
        let b = KernelCharacteristics::memory_bound("B", 1.0);
        Workload::new(
            "toy",
            Category::IrregularRepeating,
            "(AB)2",
            vec![a.clone(), b.clone(), a, b],
        )
        .with_suite("unit-test")
    }

    #[test]
    fn accessors() {
        let w = toy();
        assert_eq!(w.name(), "toy");
        assert_eq!(w.category(), Category::IrregularRepeating);
        assert_eq!(w.pattern(), "(AB)2");
        assert_eq!(w.source_suite(), "unit-test");
        assert_eq!(w.len(), 4);
        assert_eq!(w.distinct_kernels(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_workload_panics() {
        let _ = Workload::new("bad", Category::Regular, "", vec![]);
    }

    #[test]
    fn cpu_phases_default_to_zero() {
        let w = toy();
        assert_eq!(w.cpu_phase_s(0), 0.0);
        assert_eq!(w.total_cpu_phase_s(), 0.0);
    }

    #[test]
    fn cpu_phases_are_per_position() {
        let w = toy().with_cpu_phases(vec![0.01, 0.02, 0.03, 0.04]);
        assert_eq!(w.cpu_phase_s(1), 0.02);
        assert!((w.total_cpu_phase_s() - 0.10).abs() < 1e-12);
        assert_eq!(w.cpu_phase_s(99), 0.0);
    }

    #[test]
    #[should_panic(expected = "one CPU phase per kernel")]
    fn mismatched_phase_length_panics() {
        let _ = toy().with_cpu_phases(vec![0.01]);
    }

    #[test]
    fn display_mentions_name_and_count() {
        let s = toy().to_string();
        assert!(s.contains("toy") && s.contains("4 invocations"));
    }

    #[test]
    fn categories_display_distinctly() {
        let all = [
            Category::Regular,
            Category::IrregularRepeating,
            Category::IrregularNonRepeating,
            Category::IrregularInputVarying,
        ];
        let mut strs: Vec<String> = all.iter().map(|c| c.to_string()).collect();
        strs.sort();
        strs.dedup();
        assert_eq!(strs.len(), 4);
    }
}
