//! Property tests for [`TraceSummary::merge`]: merging per-chunk
//! summaries of a shuffled event stream — in any chunking and any
//! association order — agrees with one sink having aggregated the whole
//! stream. This is exactly the fleet-rollup situation: shard workers
//! each own an `AggregateSink`, and the rollup merges their summaries
//! in shard order regardless of which worker ran which shard.

use gpm_hw::HwConfig;
use gpm_trace::{AggregateSink, TraceEvent, TraceSink, TraceSummary};
use proptest::prelude::*;

/// A generator-friendly stand-in for the event kinds that feed every
/// merge path: plain counters, weighted means, minima, and both
/// histograms (including the non-finite rejection path).
#[derive(Debug, Clone)]
enum Ev {
    Dispatch,
    Decision {
        horizon: Option<usize>,
        evaluations: u64,
        /// Milli-units; `None` injects a NaN overhead so the latency
        /// histogram's `rejected` counter is exercised too.
        overhead_milli: Option<u32>,
    },
    Outcome {
        time_error_milli: Option<i32>,
        energy_error_milli: Option<i32>,
    },
    Headroom {
        slack_milli: i32,
    },
}

impl Ev {
    fn emit(&self, position: usize) -> TraceEvent {
        match self {
            Ev::Dispatch => TraceEvent::Dispatch {
                run_index: 0,
                position,
                kernel: "k".into(),
            },
            Ev::Decision {
                horizon,
                evaluations,
                overhead_milli,
            } => TraceEvent::Decision {
                run_index: 0,
                position,
                config: HwConfig::FAIL_SAFE,
                horizon: *horizon,
                evaluations: *evaluations,
                overhead_s: overhead_milli.map(|m| m as f64 / 1e3).unwrap_or(f64::NAN),
                predicted_time_s: None,
                predicted_power_w: None,
                predicted_energy_j: None,
            },
            Ev::Outcome {
                time_error_milli,
                energy_error_milli,
            } => TraceEvent::Outcome {
                run_index: 0,
                position,
                config: HwConfig::FAIL_SAFE,
                time_s: 0.1,
                energy_j: 2.0,
                gi: 1.0,
                time_error_s: time_error_milli.map(|m| m as f64 / 1e3),
                power_error_w: None,
                energy_error_j: energy_error_milli.map(|m| m as f64 / 1e3),
            },
            Ev::Headroom { slack_milli } => TraceEvent::Headroom {
                run_index: 0,
                position,
                slack_s: *slack_milli as f64 / 1e3,
            },
        }
    }
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        Just(Ev::Dispatch),
        (
            prop::option::of(1usize..6),
            0u64..200,
            prop::option::of(0u32..5000)
        )
            .prop_map(|(horizon, evaluations, overhead_milli)| Ev::Decision {
                horizon,
                evaluations,
                overhead_milli,
            }),
        (
            prop::option::of(-500i32..500),
            prop::option::of(-500i32..500)
        )
            .prop_map(|(time_error_milli, energy_error_milli)| Ev::Outcome {
                time_error_milli,
                energy_error_milli,
            }),
        (-1000i32..1000).prop_map(|slack_milli| Ev::Headroom { slack_milli }),
    ]
}

fn summarize(events: &[Ev]) -> TraceSummary {
    let sink = AggregateSink::new();
    for (i, ev) in events.iter().enumerate() {
        sink.record(&ev.emit(i));
    }
    sink.summary()
}

/// Exact equality on every counter/histogram field; tolerance on the
/// derived means, whose floating-point accumulation order legitimately
/// differs between one sink and a merge tree.
fn assert_agrees(a: &TraceSummary, b: &TraceSummary, what: &str) {
    let exact = |x: u64, y: u64, f: &str| {
        assert_eq!(x, y, "{what}: {f} differs");
    };
    exact(a.runs, b.runs, "runs");
    exact(a.dispatches, b.dispatches, "dispatches");
    exact(a.decisions, b.decisions, "decisions");
    exact(
        a.horizon_decisions,
        b.horizon_decisions,
        "horizon_decisions",
    );
    exact(
        a.horizon_evaluations,
        b.horizon_evaluations,
        "horizon_evaluations",
    );
    exact(
        a.total_evaluations,
        b.total_evaluations,
        "total_evaluations",
    );
    exact(a.outcomes, b.outcomes, "outcomes");
    exact(
        a.time_error_samples,
        b.time_error_samples,
        "time_error_samples",
    );
    exact(
        a.energy_error_samples,
        b.energy_error_samples,
        "energy_error_samples",
    );
    exact(a.headroom_samples, b.headroom_samples, "headroom_samples");
    assert_eq!(
        a.decision_latency.counts, b.decision_latency.counts,
        "{what}: latency buckets differ"
    );
    exact(
        a.decision_latency.rejected,
        b.decision_latency.rejected,
        "latency rejected",
    );
    assert_eq!(
        a.energy_error_rel.counts, b.energy_error_rel.counts,
        "{what}: error buckets differ"
    );
    let close = |x: f64, y: f64, f: &str| {
        let scale = x.abs().max(y.abs()).max(1e-12);
        assert!(
            (x - y).abs() <= 1e-9 * scale,
            "{what}: {f} differs: {x} vs {y}"
        );
    };
    close(a.mean_horizon, b.mean_horizon, "mean_horizon");
    close(
        a.mean_abs_time_error_s,
        b.mean_abs_time_error_s,
        "mean_abs_time_error_s",
    );
    close(
        a.mean_signed_energy_error_j,
        b.mean_signed_energy_error_j,
        "mean_signed_energy_error_j",
    );
    close(a.mean_headroom_s, b.mean_headroom_s, "mean_headroom_s");
    close(a.min_headroom_s, b.min_headroom_s, "min_headroom_s");
    close(
        a.horizon_overhead_s,
        b.horizon_overhead_s,
        "horizon_overhead_s",
    );
    close(
        a.overhead_per_decision_s,
        b.overhead_per_decision_s,
        "overhead_per_decision_s",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunked aggregation merged in order == one sink over the stream,
    /// for any chunk boundaries over any event mix.
    #[test]
    fn chunked_merge_agrees_with_single_sink(
        events in prop::collection::vec(ev_strategy(), 1..120),
        cuts in prop::collection::vec(0usize..120, 0..4),
    ) {
        let whole = summarize(&events);
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (events.len() + 1)).collect();
        bounds.push(0);
        bounds.push(events.len());
        bounds.sort_unstable();
        let mut merged = TraceSummary::default();
        for pair in bounds.windows(2) {
            merged.merge(&summarize(&events[pair[0]..pair[1]]));
        }
        assert_agrees(&merged, &whole, "chunked merge vs single sink");
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(ev_strategy(), 0..40),
        b in prop::collection::vec(ev_strategy(), 0..40),
        c in prop::collection::vec(ev_strategy(), 0..40),
    ) {
        let (sa, sb, sc) = (summarize(&a), summarize(&b), summarize(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        assert_agrees(&left, &right, "associativity");
    }

    /// A reshuffled stream produces the same summary — aggregation is
    /// order-insensitive, so shard scheduling cannot leak into rollups.
    #[test]
    fn aggregation_is_order_insensitive(
        events in prop::collection::vec(ev_strategy(), 1..80),
        rot in 0usize..80,
    ) {
        let mut rotated = events.clone();
        rotated.rotate_left(rot % events.len());
        assert_agrees(
            &summarize(&rotated),
            &summarize(&events),
            "rotated stream",
        );
    }
}
