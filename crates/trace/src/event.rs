//! The typed trace-event vocabulary.
//!
//! One [`TraceEvent`] is emitted per governor action. The harness replay
//! loop produces the universal lifecycle events (`RunStart`, `Dispatch`,
//! `Decision`, `Outcome`, `Headroom`, `RunEnd`) for *every* governor, so
//! baselines and MPC are directly comparable; governors with internals
//! additionally emit `Search`, `FailSafe`, and `PatternMiss` through the
//! sink installed via `Governor::set_trace_sink`.

use gpm_hw::{HwConfig, Knob};
use serde::{Deserialize, Serialize};

/// Per-knob candidate-visit counters of a configuration search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobVisits {
    /// Candidates reached by stepping the CPU P-state knob.
    pub cpu_pstate: u64,
    /// Candidates reached by stepping the northbridge-state knob.
    pub nb_state: u64,
    /// Candidates reached by stepping the GPU DPM knob.
    pub gpu_dpm: u64,
    /// Candidates reached by stepping the compute-unit-count knob.
    pub cu_count: u64,
}

impl KnobVisits {
    /// Counts one candidate visited by stepping `knob`.
    pub fn bump(&mut self, knob: Knob) {
        match knob {
            Knob::CpuPState => self.cpu_pstate += 1,
            Knob::NbState => self.nb_state += 1,
            Knob::GpuDpm => self.gpu_dpm += 1,
            Knob::CuCount => self.cu_count += 1,
        }
    }

    /// Adds another search's counters into this one.
    pub fn merge(&mut self, other: &KnobVisits) {
        self.cpu_pstate += other.cpu_pstate;
        self.nb_state += other.nb_state;
        self.gpu_dpm += other.gpu_dpm;
        self.cu_count += other.cu_count;
    }

    /// Total candidates visited across all knobs.
    pub fn total(&self) -> u64 {
        self.cpu_pstate + self.nb_state + self.gpu_dpm + self.cu_count
    }
}

/// Why a governor fell back to the fail-safe configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailSafeReason {
    /// The Eq. 5 time cap was unsatisfiable for the single kernel being
    /// priced (even the fail-safe configuration misses it).
    InfeasibleCap,
    /// The window optimizer could not keep the whole window on target and
    /// fell back for the current kernel.
    InfeasibleWindow,
    /// The search rejected predictor estimates as anomalous (non-finite or
    /// outside the physically plausible envelope) and no trustworthy
    /// candidate satisfied the cap.
    PredictionAnomaly,
    /// The pattern-store record for the current position was stale or
    /// corrupted and had to be discarded.
    StalePattern,
    /// A hardware knob transition failed even after bounded retries; the
    /// kernel ran at the fail-safe configuration instead.
    TransitionFailed,
}

/// The injectable fault channels of the `gpm-faults` layer, as they
/// appear in trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultChannelKind {
    /// Measurement corruption on the observation handed to the governor
    /// (performance counters, measured time, instruction count).
    CounterNoise,
    /// A predictor estimate replaced by an outlier spike.
    PredictorSpike,
    /// A stale or corrupted pattern-store record.
    StalePattern,
    /// A transiently failing hardware knob transition.
    TransitionFail,
    /// A transient TDP-throttle event stretching the kernel.
    TdpThrottle,
}

/// One governor action, as recorded by a [`TraceSink`](crate::TraceSink).
///
/// Field conventions: `run_index` is the 0-based application invocation
/// (0 = profiling), `position` the 0-based kernel position within the run
/// (the pattern-window position), times are seconds, energies joules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An application invocation is starting under a governor.
    RunStart {
        /// Workload name.
        workload: String,
        /// Governor name.
        governor: String,
        /// 0-based invocation index.
        run_index: usize,
        /// Kernels in the application.
        total_kernels: usize,
    },
    /// A Turbo Core baseline (run + Eq. 1 performance target) was
    /// resolved for a workload — either freshly simulated or served from
    /// the evaluation context's shared cache.
    BaselineResolved {
        /// Invocation index the baseline replays as (always 0).
        run_index: usize,
        /// Workload the baseline belongs to.
        workload: String,
        /// `true` when the cached baseline was reused, `false` when the
        /// Turbo Core run was actually simulated.
        cached: bool,
    },
    /// A kernel is about to be dispatched (before the governor decides).
    Dispatch {
        /// Invocation index.
        run_index: usize,
        /// Pattern-window position of the kernel.
        position: usize,
        /// Kernel name.
        kernel: String,
    },
    /// MPC search telemetry for one decision.
    Search {
        /// Invocation index.
        run_index: usize,
        /// Position decided for.
        position: usize,
        /// Prediction horizon of the window, when horizon-based.
        horizon: Option<usize>,
        /// Predictor evaluations performed.
        evaluations: u64,
        /// Candidate configurations visited per knob.
        visits: KnobVisits,
        /// Candidates evaluated and rejected (energy increase or cap
        /// violation) — the pruned branches of the greedy climb.
        pruned: u64,
        /// Wall-clock optimizer overhead charged, seconds.
        overhead_s: f64,
    },
    /// The configuration chosen for the upcoming kernel.
    Decision {
        /// Invocation index.
        run_index: usize,
        /// Position decided for.
        position: usize,
        /// Chosen hardware configuration.
        config: HwConfig,
        /// Horizon used, for horizon-based governors.
        horizon: Option<usize>,
        /// Predictor evaluations behind the decision.
        evaluations: u64,
        /// Optimizer overhead charged before the kernel, seconds.
        overhead_s: f64,
        /// Predicted kernel time at `config`, when the governor's search
        /// produced an estimate.
        predicted_time_s: Option<f64>,
        /// Predicted chip power at `config`, watts.
        predicted_power_w: Option<f64>,
        /// Predicted chip energy at `config`, joules.
        predicted_energy_j: Option<f64>,
    },
    /// A governor fell back to the fail-safe configuration.
    FailSafe {
        /// Invocation index.
        run_index: usize,
        /// Position the fallback applies to.
        position: usize,
        /// What made the fallback necessary.
        reason: FailSafeReason,
    },
    /// A post-profiling kernel's identity differed from the reference
    /// pattern's expectation (Section IV-A2).
    PatternMiss {
        /// Invocation index.
        run_index: usize,
        /// Mispredicted position.
        position: usize,
        /// Kernel id the reference pattern expected.
        expected: usize,
        /// Kernel id actually observed.
        observed: usize,
    },
    /// The retired kernel's measured outcome, with signed prediction
    /// errors (`predicted − observed`; positive means the predictor
    /// overestimated) when the decision carried a prediction.
    Outcome {
        /// Invocation index.
        run_index: usize,
        /// Retired position.
        position: usize,
        /// Configuration the kernel executed at.
        config: HwConfig,
        /// Measured execution time, seconds.
        time_s: f64,
        /// Measured kernel energy, joules.
        energy_j: f64,
        /// Instructions retired, giga-instructions.
        gi: f64,
        /// Signed time prediction error, seconds.
        time_error_s: Option<f64>,
        /// Signed power prediction error, watts.
        power_error_w: Option<f64>,
        /// Signed energy prediction error, joules.
        energy_error_j: Option<f64>,
    },
    /// Performance-tracker slack after a kernel retired: how much earlier
    /// than the Eq. 2 schedule the run currently sits (negative = behind
    /// target).
    Headroom {
        /// Invocation index.
        run_index: usize,
        /// Position just retired.
        position: usize,
        /// Accumulated schedule slack, seconds.
        slack_s: f64,
    },
    /// A deterministic fault plan injected a fault at this site.
    FaultInjected {
        /// Invocation index.
        run_index: usize,
        /// Kernel position the fault applies to.
        position: usize,
        /// Which fault channel fired.
        channel: FaultChannelKind,
        /// Channel-specific severity: relative perturbation amplitude,
        /// throttle factor, or seconds of latency penalty.
        magnitude: f64,
    },
    /// A governor or the dispatch path absorbed a fault and recovered
    /// without abandoning the run (sanitized input, successful retry).
    Recovered {
        /// Invocation index.
        run_index: usize,
        /// Kernel position the recovery applies to.
        position: usize,
        /// Which fault channel was recovered from.
        channel: FaultChannelKind,
        /// Retries spent before recovery (0 when recovery was
        /// sanitization or rejection rather than a retry).
        retries: u32,
    },
    /// An application invocation finished.
    RunEnd {
        /// Invocation index.
        run_index: usize,
        /// Sum of kernel execution times, seconds.
        kernel_time_s: f64,
        /// Sum of visible optimizer overheads, seconds.
        overhead_time_s: f64,
        /// Sum of DVFS transition stalls, seconds.
        transition_time_s: f64,
        /// Kernel-phase chip energy, joules.
        energy_j: f64,
        /// Instructions retired, giga-instructions.
        gi: f64,
    },
}

impl TraceEvent {
    /// The invocation index the event belongs to.
    pub fn run_index(&self) -> usize {
        match *self {
            TraceEvent::RunStart { run_index, .. }
            | TraceEvent::BaselineResolved { run_index, .. }
            | TraceEvent::Dispatch { run_index, .. }
            | TraceEvent::Search { run_index, .. }
            | TraceEvent::Decision { run_index, .. }
            | TraceEvent::FailSafe { run_index, .. }
            | TraceEvent::PatternMiss { run_index, .. }
            | TraceEvent::Outcome { run_index, .. }
            | TraceEvent::Headroom { run_index, .. }
            | TraceEvent::FaultInjected { run_index, .. }
            | TraceEvent::Recovered { run_index, .. }
            | TraceEvent::RunEnd { run_index, .. } => run_index,
        }
    }

    /// The variant name, as it appears as the JSON tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "RunStart",
            TraceEvent::BaselineResolved { .. } => "BaselineResolved",
            TraceEvent::Dispatch { .. } => "Dispatch",
            TraceEvent::Search { .. } => "Search",
            TraceEvent::Decision { .. } => "Decision",
            TraceEvent::FailSafe { .. } => "FailSafe",
            TraceEvent::PatternMiss { .. } => "PatternMiss",
            TraceEvent::Outcome { .. } => "Outcome",
            TraceEvent::Headroom { .. } => "Headroom",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::Recovered { .. } => "Recovered",
            TraceEvent::RunEnd { .. } => "RunEnd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_visits_bump_and_merge() {
        let mut v = KnobVisits::default();
        for knob in Knob::ALL {
            v.bump(knob);
        }
        v.bump(Knob::GpuDpm);
        assert_eq!(v.gpu_dpm, 2);
        assert_eq!(v.total(), 5);
        let mut w = v;
        w.merge(&v);
        assert_eq!(w.total(), 10);
        assert_eq!(w.cpu_pstate, 2);
    }

    #[test]
    fn run_index_and_kind_cover_all_variants() {
        let events = vec![
            TraceEvent::RunStart {
                workload: "w".into(),
                governor: "g".into(),
                run_index: 3,
                total_kernels: 7,
            },
            TraceEvent::BaselineResolved {
                run_index: 3,
                workload: "w".into(),
                cached: true,
            },
            TraceEvent::Dispatch {
                run_index: 3,
                position: 0,
                kernel: "k".into(),
            },
            TraceEvent::Search {
                run_index: 3,
                position: 0,
                horizon: Some(2),
                evaluations: 10,
                visits: KnobVisits::default(),
                pruned: 1,
                overhead_s: 1e-5,
            },
            TraceEvent::FailSafe {
                run_index: 3,
                position: 0,
                reason: FailSafeReason::InfeasibleCap,
            },
            TraceEvent::PatternMiss {
                run_index: 3,
                position: 1,
                expected: 0,
                observed: 2,
            },
            TraceEvent::Headroom {
                run_index: 3,
                position: 1,
                slack_s: -0.1,
            },
            TraceEvent::FaultInjected {
                run_index: 3,
                position: 2,
                channel: FaultChannelKind::TdpThrottle,
                magnitude: 1.4,
            },
            TraceEvent::Recovered {
                run_index: 3,
                position: 2,
                channel: FaultChannelKind::TransitionFail,
                retries: 1,
            },
        ];
        for e in &events {
            assert_eq!(e.run_index(), 3);
            assert!(!e.kind().is_empty());
        }
    }
}
