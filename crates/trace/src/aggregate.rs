//! In-flight aggregation: counters and fixed-bucket histograms reduced to
//! a serializable [`TraceSummary`].

use crate::event::{KnobVisits, TraceEvent};
use crate::sink::TraceSink;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// A fixed-bucket histogram: `bounds` split the real line into
/// `bounds.len() + 1` buckets; `counts[i]` holds samples in
/// `[bounds[i-1], bounds[i])` (unbounded at the ends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Strictly increasing bucket boundaries.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of recorded samples.
    pub sum: f64,
    /// Number of recorded samples.
    pub n: u64,
    /// Non-finite samples (NaN, ±∞) dropped instead of recorded. Absent
    /// in artifacts written before this field existed, hence defaulted.
    #[serde(default)]
    pub rejected: u64,
}

impl Histogram {
    /// An empty histogram over the given boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            n: 0,
            rejected: 0,
        }
    }

    /// Records one sample. Non-finite values (NaN, ±∞) would poison
    /// `sum` or land in a boundary bucket by accident of comparison
    /// order, so they are silently dropped and tallied in
    /// [`Histogram::rejected`] instead. Finite values beyond the last
    /// bound saturate into the open-ended top bucket; values below the
    /// first bound land in the open-ended bottom bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        let idx = self.bounds.partition_point(|&b| b <= value);
        self.counts[idx] += 1;
        self.sum += value;
        self.n += 1;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds another histogram over the same boundaries into this one.
    ///
    /// # Panics
    ///
    /// Panics if the boundary vectors differ — merging histograms with
    /// different bucketing has no meaningful result.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket boundaries"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.n += other.n;
        self.rejected += other.rejected;
    }
}

/// Everything the [`AggregateSink`] distills from an event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// `RunStart` events seen.
    pub runs: u64,
    /// `BaselineResolved` events with `cached == false`: Turbo Core
    /// baselines actually simulated.
    pub baseline_simulations: u64,
    /// `BaselineResolved` events with `cached == true`: baselines served
    /// from the evaluation context's shared cache.
    pub baseline_cache_hits: u64,
    /// `Dispatch` events seen.
    pub dispatches: u64,
    /// All `Decision` events seen.
    pub decisions: u64,
    /// `Decision` events carrying a horizon — these correspond 1:1 with
    /// `MpcStats::record_decision`, so the fields below reproduce the
    /// governor's own statistics from the trace alone.
    pub horizon_decisions: u64,
    /// Mean horizon over horizon-carrying decisions (Figure 15's input).
    pub mean_horizon: f64,
    /// Total optimizer overhead across horizon-carrying decisions, seconds.
    pub horizon_overhead_s: f64,
    /// Mean optimizer overhead per horizon-carrying decision, seconds.
    pub overhead_per_decision_s: f64,
    /// Predictor evaluations across horizon-carrying decisions.
    pub horizon_evaluations: u64,
    /// Predictor evaluations across all decisions.
    pub total_evaluations: u64,
    /// `Search` events seen.
    pub searches: u64,
    /// Candidate configurations visited per knob across all searches.
    pub knob_visits: KnobVisits,
    /// Candidates evaluated and rejected across all searches.
    pub pruned_candidates: u64,
    /// `FailSafe` events seen.
    pub fail_safe_events: u64,
    /// `PatternMiss` events seen.
    pub pattern_misses: u64,
    /// `FaultInjected` events seen.
    pub fault_injections: u64,
    /// `Recovered` events seen.
    pub recoveries: u64,
    /// `Outcome` events seen.
    pub outcomes: u64,
    /// Mean |signed time error| over outcomes carrying predictions, s.
    pub mean_abs_time_error_s: f64,
    /// Outcomes that carried a time prediction — the weight behind
    /// `mean_abs_time_error_s` (needed to merge summaries exactly).
    pub time_error_samples: u64,
    /// Mean signed energy error over outcomes carrying predictions, J.
    pub mean_signed_energy_error_j: f64,
    /// Outcomes that carried an energy prediction — the weight behind
    /// `mean_signed_energy_error_j`.
    pub energy_error_samples: u64,
    /// Smallest observed headroom slack, seconds (0 when none seen).
    pub min_headroom_s: f64,
    /// Mean observed headroom slack, seconds.
    pub mean_headroom_s: f64,
    /// `Headroom` events seen — the weight behind `mean_headroom_s`.
    pub headroom_samples: u64,
    /// Decision latency (`Decision.overhead_s`) distribution, seconds.
    pub decision_latency: Histogram,
    /// Relative signed energy prediction error distribution
    /// (`(predicted − observed) / observed`).
    pub energy_error_rel: Histogram,
}

/// Decision-latency bucket boundaries, seconds (1 µs … 10 ms decades).
fn latency_bounds() -> Vec<f64> {
    vec![1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
}

/// Relative prediction-error bucket boundaries (symmetric around 0).
fn error_bounds() -> Vec<f64> {
    vec![
        -0.5, -0.2, -0.1, -0.05, -0.02, 0.0, 0.02, 0.05, 0.1, 0.2, 0.5,
    ]
}

impl Default for TraceSummary {
    fn default() -> TraceSummary {
        TraceSummary {
            runs: 0,
            baseline_simulations: 0,
            baseline_cache_hits: 0,
            dispatches: 0,
            decisions: 0,
            horizon_decisions: 0,
            mean_horizon: 0.0,
            horizon_overhead_s: 0.0,
            overhead_per_decision_s: 0.0,
            horizon_evaluations: 0,
            total_evaluations: 0,
            searches: 0,
            knob_visits: KnobVisits::default(),
            pruned_candidates: 0,
            fail_safe_events: 0,
            pattern_misses: 0,
            fault_injections: 0,
            recoveries: 0,
            outcomes: 0,
            mean_abs_time_error_s: 0.0,
            time_error_samples: 0,
            mean_signed_energy_error_j: 0.0,
            energy_error_samples: 0,
            min_headroom_s: 0.0,
            mean_headroom_s: 0.0,
            headroom_samples: 0,
            decision_latency: Histogram::new(latency_bounds()),
            energy_error_rel: Histogram::new(error_bounds()),
        }
    }
}

impl TraceSummary {
    /// Folds `other` into this summary as if both event streams had been
    /// recorded by one sink: counters and histograms add, means combine
    /// weighted by their sample counts, and the minimum headroom is the
    /// smaller of the two observed minima.
    ///
    /// This is the fleet-rollup primitive: per-shard summaries merged in
    /// shard order produce one fleet-level summary that is independent of
    /// which worker thread ran which shard.
    pub fn merge(&mut self, other: &TraceSummary) {
        fn weighted(a: f64, an: u64, b: f64, bn: u64) -> f64 {
            let n = an + bn;
            if n == 0 {
                0.0
            } else {
                (a * an as f64 + b * bn as f64) / n as f64
            }
        }
        self.mean_horizon = weighted(
            self.mean_horizon,
            self.horizon_decisions,
            other.mean_horizon,
            other.horizon_decisions,
        );
        self.mean_abs_time_error_s = weighted(
            self.mean_abs_time_error_s,
            self.time_error_samples,
            other.mean_abs_time_error_s,
            other.time_error_samples,
        );
        self.mean_signed_energy_error_j = weighted(
            self.mean_signed_energy_error_j,
            self.energy_error_samples,
            other.mean_signed_energy_error_j,
            other.energy_error_samples,
        );
        self.mean_headroom_s = weighted(
            self.mean_headroom_s,
            self.headroom_samples,
            other.mean_headroom_s,
            other.headroom_samples,
        );
        self.min_headroom_s = if self.headroom_samples == 0 {
            other.min_headroom_s
        } else if other.headroom_samples == 0 {
            self.min_headroom_s
        } else {
            self.min_headroom_s.min(other.min_headroom_s)
        };

        self.runs += other.runs;
        self.baseline_simulations += other.baseline_simulations;
        self.baseline_cache_hits += other.baseline_cache_hits;
        self.dispatches += other.dispatches;
        self.decisions += other.decisions;
        self.horizon_decisions += other.horizon_decisions;
        self.horizon_overhead_s += other.horizon_overhead_s;
        self.horizon_evaluations += other.horizon_evaluations;
        self.total_evaluations += other.total_evaluations;
        self.searches += other.searches;
        self.knob_visits.merge(&other.knob_visits);
        self.pruned_candidates += other.pruned_candidates;
        self.fail_safe_events += other.fail_safe_events;
        self.pattern_misses += other.pattern_misses;
        self.fault_injections += other.fault_injections;
        self.recoveries += other.recoveries;
        self.outcomes += other.outcomes;
        self.time_error_samples += other.time_error_samples;
        self.energy_error_samples += other.energy_error_samples;
        self.headroom_samples += other.headroom_samples;
        self.overhead_per_decision_s = if self.horizon_decisions > 0 {
            self.horizon_overhead_s / self.horizon_decisions as f64
        } else {
            0.0
        };
        self.decision_latency.merge(&other.decision_latency);
        self.energy_error_rel.merge(&other.energy_error_rel);
    }
}

#[derive(Debug, Default)]
struct Accum {
    summary: TraceSummary,
    horizon_sum: u64,
    abs_time_err_sum: f64,
    time_err_n: u64,
    energy_err_sum: f64,
    energy_err_n: u64,
    headroom_sum: f64,
    headroom_n: u64,
    headroom_min: Option<f64>,
}

/// Reduces the event stream to counters and histograms on the fly; the
/// result is available at any time via [`AggregateSink::summary`].
#[derive(Debug, Default)]
pub struct AggregateSink {
    state: Mutex<Accum>,
}

impl AggregateSink {
    /// A fresh, empty aggregator.
    pub fn new() -> AggregateSink {
        AggregateSink::default()
    }

    /// The summary of everything recorded so far.
    pub fn summary(&self) -> TraceSummary {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut s = st.summary.clone();
        if s.horizon_decisions > 0 {
            s.mean_horizon = st.horizon_sum as f64 / s.horizon_decisions as f64;
            s.overhead_per_decision_s = s.horizon_overhead_s / s.horizon_decisions as f64;
        }
        if st.time_err_n > 0 {
            s.mean_abs_time_error_s = st.abs_time_err_sum / st.time_err_n as f64;
        }
        if st.energy_err_n > 0 {
            s.mean_signed_energy_error_j = st.energy_err_sum / st.energy_err_n as f64;
        }
        if st.headroom_n > 0 {
            s.mean_headroom_s = st.headroom_sum / st.headroom_n as f64;
            s.min_headroom_s = st.headroom_min.unwrap_or(0.0);
        }
        s.time_error_samples = st.time_err_n;
        s.energy_error_samples = st.energy_err_n;
        s.headroom_samples = st.headroom_n;
        s
    }
}

impl TraceSink for AggregateSink {
    fn record(&self, event: &TraceEvent) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match event {
            TraceEvent::RunStart { .. } => st.summary.runs += 1,
            TraceEvent::BaselineResolved { cached, .. } => {
                if *cached {
                    st.summary.baseline_cache_hits += 1;
                } else {
                    st.summary.baseline_simulations += 1;
                }
            }
            TraceEvent::Dispatch { .. } => st.summary.dispatches += 1,
            TraceEvent::Search { visits, pruned, .. } => {
                st.summary.searches += 1;
                st.summary.knob_visits.merge(visits);
                st.summary.pruned_candidates += pruned;
            }
            TraceEvent::Decision {
                horizon,
                evaluations,
                overhead_s,
                ..
            } => {
                st.summary.decisions += 1;
                st.summary.total_evaluations += evaluations;
                st.summary.decision_latency.record(*overhead_s);
                if let Some(h) = horizon {
                    st.summary.horizon_decisions += 1;
                    // A non-finite overhead would poison the running
                    // total (and every mean derived from it) for the
                    // rest of the stream; drop it like the latency
                    // histogram does.
                    if overhead_s.is_finite() {
                        st.summary.horizon_overhead_s += overhead_s;
                    }
                    st.summary.horizon_evaluations += evaluations;
                    st.horizon_sum += *h as u64;
                }
            }
            TraceEvent::FailSafe { .. } => st.summary.fail_safe_events += 1,
            TraceEvent::PatternMiss { .. } => st.summary.pattern_misses += 1,
            TraceEvent::FaultInjected { .. } => st.summary.fault_injections += 1,
            TraceEvent::Recovered { .. } => st.summary.recoveries += 1,
            TraceEvent::Outcome {
                energy_j,
                time_error_s,
                energy_error_j,
                ..
            } => {
                st.summary.outcomes += 1;
                if let Some(te) = time_error_s.filter(|te| te.is_finite()) {
                    st.abs_time_err_sum += te.abs();
                    st.time_err_n += 1;
                }
                if let Some(ee) = energy_error_j.filter(|ee| ee.is_finite()) {
                    st.energy_err_sum += ee;
                    st.energy_err_n += 1;
                    if *energy_j > 0.0 {
                        st.summary.energy_error_rel.record(ee / energy_j);
                    }
                }
            }
            TraceEvent::Headroom { slack_s, .. } => {
                if slack_s.is_finite() {
                    st.headroom_sum += slack_s;
                    st.headroom_n += 1;
                    let min = st.headroom_min.get_or_insert(*slack_s);
                    if slack_s < min {
                        *min = *slack_s;
                    }
                }
            }
            TraceEvent::RunEnd { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::HwConfig;

    #[test]
    fn histogram_buckets_cover_the_line() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0]);
        for v in [-5.0, 0.0, 0.5, 1.5, 2.0, 99.0] {
            h.record(v);
        }
        h.record(f64::NAN); // dropped
        assert_eq!(h.counts, vec![1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.rejected, 1);
        assert!((h.mean() - (-5.0f64 + 0.0 + 0.5 + 1.5 + 2.0 + 99.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_all_non_finite_samples() {
        let mut h = Histogram::new(vec![0.0, 1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.counts, vec![0, 0, 0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.rejected, 3);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.mean(), 0.0);
        // Rejection counts survive a merge.
        let mut other = Histogram::new(vec![0.0, 1.0]);
        other.record(f64::NAN);
        other.record(0.5);
        h.merge(&other);
        assert_eq!(h.rejected, 4);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_saturates_finite_values_beyond_the_last_bound() {
        let mut h = Histogram::new(vec![1e-6, 1e-3]);
        // Far beyond the last bound — including f64::MAX — lands in the
        // open-ended top bucket, not in `rejected`.
        for v in [2e-3, 1e6, f64::MAX] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![0, 0, 3]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.rejected, 0);
        // And far below the first bound lands in the bottom bucket.
        h.record(f64::MIN);
        assert_eq!(h.counts, vec![1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn summary_reproduces_decision_statistics() {
        let agg = AggregateSink::new();
        // Two horizon decisions (h = 4, 2) and one profiling decision.
        for (h, evals, oh) in [
            (Some(4usize), 80u64, 1e-4),
            (Some(2), 40, 5e-5),
            (None, 18, 2e-5),
        ] {
            agg.record(&TraceEvent::Decision {
                run_index: 1,
                position: 0,
                config: HwConfig::FAIL_SAFE,
                horizon: h,
                evaluations: evals,
                overhead_s: oh,
                predicted_time_s: None,
                predicted_power_w: None,
                predicted_energy_j: None,
            });
        }
        let s = agg.summary();
        assert_eq!(s.decisions, 3);
        assert_eq!(s.horizon_decisions, 2);
        assert_eq!(s.mean_horizon, 3.0);
        assert_eq!(s.horizon_evaluations, 120);
        assert_eq!(s.total_evaluations, 138);
        assert!((s.horizon_overhead_s - 1.5e-4).abs() < 1e-15);
        assert!((s.overhead_per_decision_s - 7.5e-5).abs() < 1e-15);
        assert_eq!(s.decision_latency.count(), 3);
    }

    #[test]
    fn summary_tracks_errors_and_headroom() {
        let agg = AggregateSink::new();
        agg.record(&TraceEvent::Outcome {
            run_index: 1,
            position: 0,
            config: HwConfig::FAIL_SAFE,
            time_s: 0.1,
            energy_j: 2.0,
            gi: 1.0,
            time_error_s: Some(-0.01),
            power_error_w: Some(0.5),
            energy_error_j: Some(0.2),
        });
        agg.record(&TraceEvent::Outcome {
            run_index: 1,
            position: 1,
            config: HwConfig::FAIL_SAFE,
            time_s: 0.1,
            energy_j: 2.0,
            gi: 1.0,
            time_error_s: None,
            power_error_w: None,
            energy_error_j: None,
        });
        agg.record(&TraceEvent::Headroom {
            run_index: 1,
            position: 0,
            slack_s: 0.3,
        });
        agg.record(&TraceEvent::Headroom {
            run_index: 1,
            position: 1,
            slack_s: -0.1,
        });
        let s = agg.summary();
        assert_eq!(s.outcomes, 2);
        assert!((s.mean_abs_time_error_s - 0.01).abs() < 1e-15);
        assert!((s.mean_signed_energy_error_j - 0.2).abs() < 1e-15);
        // 0.2 / 2.0 = 10% relative error landed in a positive bucket.
        assert_eq!(s.energy_error_rel.count(), 1);
        assert_eq!(s.min_headroom_s, -0.1);
        assert!((s.mean_headroom_s - 0.1).abs() < 1e-15);
    }

    #[test]
    fn summary_splits_baseline_resolutions_by_cache_state() {
        let agg = AggregateSink::new();
        for cached in [false, true, true, true] {
            agg.record(&TraceEvent::BaselineResolved {
                run_index: 0,
                workload: "w".into(),
                cached,
            });
        }
        let s = agg.summary();
        assert_eq!(s.baseline_simulations, 1);
        assert_eq!(s.baseline_cache_hits, 3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let agg = AggregateSink::new();
        agg.record(&TraceEvent::Headroom {
            run_index: 0,
            position: 0,
            slack_s: 0.25,
        });
        agg.record(&TraceEvent::Dispatch {
            run_index: 0,
            position: 0,
            kernel: "k".into(),
        });
        let s = agg.summary();
        let mut merged = s.clone();
        merged.merge(&TraceSummary::default());
        assert_eq!(merged, s);
        let mut from_empty = TraceSummary::default();
        from_empty.merge(&s);
        assert_eq!(from_empty, s);
    }

    #[test]
    fn merge_combines_counters_means_and_minima() {
        let make = |slacks: &[f64], errs: &[f64]| {
            let agg = AggregateSink::new();
            for (i, &slack_s) in slacks.iter().enumerate() {
                agg.record(&TraceEvent::Headroom {
                    run_index: 0,
                    position: i,
                    slack_s,
                });
            }
            for (i, &te) in errs.iter().enumerate() {
                agg.record(&TraceEvent::Outcome {
                    run_index: 0,
                    position: i,
                    config: HwConfig::FAIL_SAFE,
                    time_s: 0.1,
                    energy_j: 2.0,
                    gi: 1.0,
                    time_error_s: Some(te),
                    power_error_w: None,
                    energy_error_j: Some(te),
                });
            }
            agg.summary()
        };
        let a = make(&[0.2, 0.4], &[0.1]);
        let b = make(&[-0.3], &[0.3, 0.5]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.outcomes, 3);
        assert_eq!(merged.headroom_samples, 3);
        assert_eq!(merged.time_error_samples, 3);
        assert_eq!(merged.min_headroom_s, -0.3);
        assert!((merged.mean_headroom_s - (0.2 + 0.4 - 0.3) / 3.0).abs() < 1e-12);
        assert!((merged.mean_abs_time_error_s - (0.1 + 0.3 + 0.5) / 3.0).abs() < 1e-12);
        // Merging in the opposite order reaches the same aggregate.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(other_way.outcomes, merged.outcomes);
        assert_eq!(other_way.min_headroom_s, merged.min_headroom_s);
        assert!((other_way.mean_headroom_s - merged.mean_headroom_s).abs() < 1e-12);
        // A merged summary equals one sink that saw both streams.
        let combined = make(&[0.2, 0.4, -0.3], &[0.1, 0.3, 0.5]);
        assert_eq!(
            merged.energy_error_rel.count(),
            combined.energy_error_rel.count()
        );
        assert!((merged.mean_headroom_s - combined.mean_headroom_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different bucket boundaries")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![0.0, 1.0]);
        let b = Histogram::new(vec![0.0, 2.0]);
        a.merge(&b);
    }

    #[test]
    fn serialized_summary_roundtrips() {
        let agg = AggregateSink::new();
        agg.record(&TraceEvent::RunStart {
            workload: "w".into(),
            governor: "g".into(),
            run_index: 0,
            total_kernels: 3,
        });
        let s = agg.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: TraceSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
