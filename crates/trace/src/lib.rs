//! Decision-level observability for gpm governors.
//!
//! Every governor action during a replay — kernel dispatch, optimizer
//! search, chosen configuration, observed outcome, headroom bookkeeping,
//! fail-safe and pattern-misprediction triggers — is describable as one
//! typed [`TraceEvent`]. Producers (the harness replay loop and the
//! governors' internals) hand events to a pluggable [`TraceSink`]:
//!
//! * [`NoopSink`] — discards everything and reports itself disabled, so
//!   untraced runs pay nothing and produce byte-identical decisions;
//! * [`RingSink`] — a bounded in-memory ring keeping the last N events;
//! * [`JsonlSink`] — one JSON object per line on any writer, for offline
//!   analysis;
//! * [`AggregateSink`] — counters and fixed-bucket histograms, reduced to
//!   a [`TraceSummary`] (mean horizon, overhead per decision, per-knob
//!   search traffic, prediction-error distribution — the quantities behind
//!   the paper's Figures 14 and 15);
//! * [`FanoutSink`] — tees events to several sinks at once.
//!
//! The crate sits below the governors in the dependency order (it only
//! knows `gpm-hw` types), so both `gpm-governors` and `gpm-mpc` can emit
//! events without cycles.
//!
//! # Examples
//!
//! ```
//! use gpm_trace::{RingSink, TraceEvent, TraceSink};
//!
//! let ring = RingSink::new(4);
//! ring.record(&TraceEvent::Headroom { run_index: 1, position: 0, slack_s: 0.25 });
//! assert_eq!(ring.len(), 1);
//! assert_eq!(ring.total_recorded(), 1);
//! ```

pub mod aggregate;
pub mod event;
pub mod sink;

pub use aggregate::{AggregateSink, Histogram, TraceSummary};
pub use event::{FailSafeReason, FaultChannelKind, KnobVisits, TraceEvent};
pub use sink::{noop_sink, FanoutSink, JsonlSink, NoopSink, RingSink, TraceSink};
