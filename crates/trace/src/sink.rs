//! Pluggable trace-event consumers.

use crate::event::TraceEvent;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// Consumes [`TraceEvent`]s.
///
/// Implementations take `&self` so one sink can be shared (behind an
/// [`Arc`]) between the harness replay loop and a governor's internals;
/// they must therefore synchronize internally.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Records one event.
    fn record(&self, event: &TraceEvent);

    /// Whether recording is active. Producers may skip building events
    /// (allocating names, computing derived values) when this is `false`;
    /// they must never let the answer change a decision.
    fn enabled(&self) -> bool {
        true
    }
}

/// Locks a sink-internal mutex, recovering from poisoning: a panicking
/// producer thread must not take tracing down with it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The disabled sink: discards every event and compiles to nothing at the
/// call sites that check [`TraceSink::enabled`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A shared handle to the disabled sink.
pub fn noop_sink() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}

struct RingState {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    total: u64,
}

/// A bounded in-memory ring buffer keeping the most recent events.
///
/// Writers take one short lock per event; no allocation happens after the
/// ring has filled (events overwrite the oldest slot in place).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

impl fmt::Debug for RingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingState")
            .field("len", &self.buf.len())
            .field("head", &self.head)
            .field("total", &self.total)
            .finish()
    }
}

impl RingSink {
    /// A ring keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            state: Mutex::new(RingState {
                buf: Vec::with_capacity(capacity),
                head: 0,
                total: 0,
            }),
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).buf.len()
    }

    /// Whether no event has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded, including those overwritten.
    pub fn total_recorded(&self) -> u64 {
        lock_recover(&self.state).total
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let st = lock_recover(&self.state);
        let mut out = Vec::with_capacity(st.buf.len());
        out.extend_from_slice(&st.buf[st.head..]);
        out.extend_from_slice(&st.buf[..st.head]);
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let mut st = lock_recover(&self.state);
        st.total += 1;
        if st.buf.len() < self.capacity {
            st.buf.push(event.clone());
        } else {
            let head = st.head;
            st.buf[head] = event.clone();
            st.head = (head + 1) % self.capacity;
        }
    }
}

/// Writes one JSON object per event, one per line (JSON Lines).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Streams events into `writer`.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        lock_recover(&self.writer).flush()
    }

    /// Consumes the sink, returning the writer (flushed).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap_or_else(|p| p.into_inner());
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        let mut w = lock_recover(&self.writer);
        // A full disk must not abort the replay being observed.
        let _ = writeln!(w, "{line}");
    }
}

/// Tees every event to several sinks.
#[derive(Debug, Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// A fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headroom(position: usize) -> TraceEvent {
        TraceEvent::Headroom {
            run_index: 0,
            position,
            slack_s: position as f64,
        }
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(&headroom(0));
        assert!(!noop_sink().enabled());
    }

    #[test]
    fn ring_retains_in_order_before_wrap() {
        let ring = RingSink::new(8);
        for p in 0..5 {
            ring.record(&headroom(p));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.total_recorded(), 5);
        let positions: Vec<usize> = ring
            .snapshot()
            .iter()
            .map(|e| match e {
                TraceEvent::Headroom { position, .. } => *position,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraps_keeping_newest_oldest_first() {
        let ring = RingSink::new(4);
        for p in 0..11 {
            ring.record(&headroom(p));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.total_recorded(), 11);
        let positions: Vec<usize> = ring
            .snapshot()
            .iter()
            .map(|e| match e {
                TraceEvent::Headroom { position, .. } => *position,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // The last 4 of 0..11, oldest first.
        assert_eq!(positions, vec![7, 8, 9, 10]);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&headroom(0));
        sink.record(&headroom(1));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: TraceEvent = serde_json::from_str(line).unwrap();
            assert_eq!(back.kind(), "Headroom");
        }
    }

    #[test]
    fn fanout_reaches_every_sink_and_enables_on_any() {
        let a = Arc::new(RingSink::new(4));
        let b = Arc::new(RingSink::new(4));
        let fan = FanoutSink::new(vec![a.clone(), b.clone(), Arc::new(NoopSink)]);
        assert!(fan.enabled());
        fan.record(&headroom(2));
        assert_eq!(a.total_recorded(), 1);
        assert_eq!(b.total_recorded(), 1);
        let all_noop = FanoutSink::new(vec![Arc::new(NoopSink)]);
        assert!(!all_noop.enabled());
        assert!(!FanoutSink::default().enabled());
    }
}
