//! Command-line entry points: `reproduce_main` backs the `reproduce`
//! binary; `run_single` backs the legacy per-figure wrapper binaries.

use crate::experiment::Mode;
use crate::golden::default_tolerance;
use crate::registry::{find, registry};
use crate::runner::{run_suite, ExperimentRecord, RunConfig};
use crate::suite::fast_from_env;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Runs one registered experiment (the legacy binary path): builds a
/// context if needed, prints the rendered report to stdout, writes the
/// schema-versioned artifact, and exits nonzero on gate failure.
///
/// Mode comes from `GPM_BENCH_FAST` (any value but `0`), preserving the
/// wrappers' historical interface.
pub fn run_single(name: &str) -> ExitCode {
    let mode = if fast_from_env() {
        Mode::Fast
    } else {
        Mode::Full
    };
    let exp = find(name).unwrap_or_else(|| panic!("experiment {name:?} is not registered"));
    let cfg = RunConfig {
        mode,
        filter: vec![name.to_string()],
        jobs: 1,
        resume: false,
        ..RunConfig::for_mode(mode)
    };
    let mut cfg = cfg;
    cfg.aggregate_path = None;
    let report = run_suite(&cfg);
    let record = report
        .records
        .iter()
        .find(|r| r.name == exp.name)
        .expect("selected experiment ran");
    print!("{}", record.text);
    print_gate_summary(record);
    if record.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_gate_summary(record: &ExperimentRecord) {
    if record.gates.is_empty() {
        return;
    }
    eprintln!("gates ({}):", record.name);
    for g in &record.gates {
        eprintln!(
            "  [{}] {} {}: expected {} ± {}, got {}",
            if g.pass { "ok" } else { "FAIL" },
            g.source.as_str(),
            g.metric,
            g.expected,
            g.tol,
            g.actual
                .map(|a| format!("{a}"))
                .unwrap_or_else(|| "<missing>".to_string()),
        );
    }
}

struct ReproduceArgs {
    cfg: RunConfig,
    list: bool,
    emit_golden: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--fast | --full] [--filter SUBSTR]... [--jobs N]\n\
         \x20                [--resume] [--out DIR] [--aggregate PATH]\n\
         \x20                [--list] [--emit-golden PATH]\n\
         \n\
         Runs the registered paper-reproduction experiments in parallel over a\n\
         shared evaluation context, writes one schema-versioned JSON artifact\n\
         per experiment plus an aggregate report, and exits nonzero when any\n\
         metric leaves its tolerance band. --resume reuses artifacts from a\n\
         previous partial run when their fingerprints still match."
    );
    std::process::exit(2);
}

fn parse_args<I: Iterator<Item = String>>(mut it: I) -> ReproduceArgs {
    let mut mode = Mode::Full;
    let mut filter = Vec::new();
    let mut jobs = 0usize;
    let mut resume = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut aggregate: Option<PathBuf> = None;
    let mut list = false;
    let mut emit_golden = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fast" => mode = Mode::Fast,
            "--full" => mode = Mode::Full,
            "--filter" => filter.push(it.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--resume" => resume = true,
            "--out" => out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--aggregate" => aggregate = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--list" => list = true,
            "--emit-golden" => {
                emit_golden = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let mut cfg = RunConfig::for_mode(mode);
    cfg.filter = filter;
    cfg.jobs = jobs;
    cfg.resume = resume;
    if let Some(dir) = out_dir {
        cfg.out_dir = dir;
    }
    if let Some(path) = aggregate {
        cfg.aggregate_path = Some(path);
    }
    ReproduceArgs {
        cfg,
        list,
        emit_golden,
    }
}

/// The `reproduce` binary: one command for the whole registry.
pub fn reproduce_main() -> ExitCode {
    let args = parse_args(std::env::args().skip(1));
    if args.list {
        println!("{:<24} {:<14} ctx  title", "name", "paper ref");
        for e in registry() {
            println!(
                "{:<24} {:<14} {}  {}",
                e.name,
                e.paper_ref,
                if e.needs_ctx { "yes" } else { " no" },
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = run_suite(&args.cfg);
    if let Some(path) = &args.emit_golden {
        let text = render_golden_file(&report.records, args.cfg.mode);
        std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote golden table to {}", path.display());
    }

    let passed = report.records.iter().filter(|r| r.passed).count();
    eprintln!(
        "reproduce: {}/{} experiments passed ({} resumed, mode {})",
        passed,
        report.records.len(),
        report.resumed,
        args.cfg.mode
    );
    for r in report.records.iter().filter(|r| !r.passed) {
        eprintln!("FAILED: {}", r.name);
        print_gate_summary(r);
    }
    if report.all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders a regenerated `golden.rs`: this run's metrics for
/// `recorded_mode`, merged with the compiled-in rows of the other mode.
pub fn render_golden_file(records: &[ExperimentRecord], recorded_mode: Mode) -> String {
    let mut rows: Vec<(String, String, String, f64, f64)> = crate::golden::GOLDEN
        .iter()
        .filter(|(_, m, _, _, _)| *m != recorded_mode.as_str())
        .map(|&(e, m, k, v, t)| (e.to_string(), m.to_string(), k.to_string(), v, t))
        .collect();
    for r in records {
        if r.crashed {
            continue;
        }
        for m in &r.metrics {
            rows.push((
                r.name.clone(),
                recorded_mode.as_str().to_string(),
                m.name.clone(),
                m.value,
                default_tolerance(m.value),
            ));
        }
    }
    rows.sort_by(|a, b| (&a.0, &a.1, &a.2).cmp(&(&b.0, &b.1, &b.2)));

    let mut out = String::from(
        "//! Recorded golden values of this implementation, one row per\n\
         //! (experiment, mode, metric).\n\
         //!\n\
         //! THIS FILE IS GENERATED by `reproduce --emit-golden` — run the suite\n\
         //! in each mode and commit the regenerated file. Entries for the mode\n\
         //! *not* being re-recorded are preserved from the compiled-in table.\n\
         //!\n\
         //! Tolerances: exact (0) for integral values, else the wider of 2%\n\
         //! relative and 0.02 absolute — tight enough to flag behaviour changes,\n\
         //! loose enough to survive cross-platform libm variance.\n\
         \n\
         use crate::experiment::{Expectation, Mode, Source};\n\
         \n\
         /// (experiment, mode, metric, expected, tolerance).\n\
         pub type GoldenRow = (&'static str, &'static str, &'static str, f64, f64);\n\
         \n\
         /// The recorded table.\n\
         pub const GOLDEN: &[GoldenRow] = &[\n",
    );
    for (e, m, k, v, t) in &rows {
        writeln!(out, "    ({e:?}, {m:?}, {k:?}, {v:?}, {t:?}),").unwrap();
    }
    out.push_str(
        "];\n\
         \n\
         /// Golden expectations for one experiment under one mode.\n\
         pub fn golden_for(name: &str, mode: Mode) -> Vec<Expectation> {\n\
         \x20   GOLDEN\n\
         \x20       .iter()\n\
         \x20       .filter(|(exp, m, _, _, _)| *exp == name && *m == mode.as_str())\n\
         \x20       .map(|&(_, _, metric, expected, tol)| Expectation {\n\
         \x20           metric,\n\
         \x20           expected,\n\
         \x20           tol,\n\
         \x20           source: Source::Golden,\n\
         \x20           mode: Some(mode),\n\
         \x20       })\n\
         \x20       .collect()\n\
         }\n\
         \n\
         /// The default tolerance rule used by the emitter.\n\
         pub fn default_tolerance(value: f64) -> f64 {\n\
         \x20   if value.fract() == 0.0 && value.abs() < 1e9 {\n\
         \x20       0.0\n\
         \x20   } else {\n\
         \x20       (value.abs() * 0.02).max(0.02)\n\
         \x20   }\n\
         }\n\
         \n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   use super::*;\n\
         \n\
         \x20   #[test]\n\
         \x20   fn tolerance_rule_distinguishes_counts_from_measurements() {\n\
         \x20       assert_eq!(default_tolerance(30.0), 0.0);\n\
         \x20       assert_eq!(default_tolerance(0.0), 0.0);\n\
         \x20       assert!((default_tolerance(24.8) - 0.496).abs() < 1e-9);\n\
         \x20       assert_eq!(default_tolerance(0.001), 0.02);\n\
         \x20   }\n\
         \n\
         \x20   #[test]\n\
         \x20   fn golden_rows_parse_into_expectations() {\n\
         \x20       for &(name, m, _, _, _) in GOLDEN {\n\
         \x20           assert!(m == \"fast\" || m == \"full\", \"{name}: bad mode {m}\");\n\
         \x20       }\n\
         \x20       // Unknown experiments yield no expectations.\n\
         \x20       assert!(golden_for(\"definitely-not-registered\", Mode::Fast).is_empty());\n\
         \x20   }\n\
         }\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_covers_all_flags() {
        let args = parse_args(
            [
                "--fast",
                "--filter",
                "fig8",
                "--filter",
                "table",
                "--jobs",
                "3",
                "--resume",
                "--out",
                "tmp/xp",
                "--aggregate",
                "tmp/REPRO.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.cfg.mode, Mode::Fast);
        assert_eq!(args.cfg.filter, vec!["fig8", "table"]);
        assert_eq!(args.cfg.jobs, 3);
        assert!(args.cfg.resume);
        assert_eq!(args.cfg.out_dir, PathBuf::from("tmp/xp"));
        assert_eq!(
            args.cfg.aggregate_path,
            Some(PathBuf::from("tmp/REPRO.json"))
        );
        assert!(!args.list);
        assert!(args.emit_golden.is_none());
    }

    #[test]
    fn golden_file_round_trips_through_rustfmt_shape() {
        use crate::experiment::metric;
        use gpm_trace::TraceSummary;
        use serde_json::Value;
        let records = vec![ExperimentRecord {
            name: "fig8".into(),
            paper_ref: "Figure 8".into(),
            title: "t".into(),
            mode: "fast".into(),
            fingerprint: 1,
            passed: true,
            crashed: false,
            metrics: vec![metric("mpc_energy_savings_pct", 28.75)],
            gates: vec![],
            trace: TraceSummary::default(),
            phases: vec![],
            duration_ms: 1,
            text: String::new(),
            details: Value::Null,
        }];
        let text = render_golden_file(&records, Mode::Fast);
        assert!(text.contains("(\"fig8\", \"fast\", \"mpc_energy_savings_pct\", 28.75,"));
        assert!(text.contains("pub const GOLDEN"));
        // The emitter preserves rows of the other mode from the compiled table.
        for (e, m, k, _, _) in crate::golden::GOLDEN
            .iter()
            .filter(|(_, m, _, _, _)| *m == "full")
        {
            assert!(text.contains(&format!("({e:?}, {m:?}, {k:?}")));
        }
    }
}
