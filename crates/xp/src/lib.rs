//! gpm-xp — the experiment registry and one-command paper-reproduction
//! pipeline.
//!
//! Every figure, table, and ablation of the HPCA'17 study (plus the
//! repo's extension studies) is a registered [`Experiment`]: a run
//! function producing a rendered report and named metrics, and a set of
//! [`Expectation`]s — paper values and implementation golden values with
//! tolerance bands. The [`runner`] schedules the registry
//! work-stealing-parallel over one shared [`gpm_harness::EvalContext`]
//! (so the Turbo Core baseline cache amortizes across experiments),
//! writes schema-versioned JSON artifacts per experiment, checkpoints
//! completed work for resume, and exits nonzero when any metric drifts
//! outside its band.
//!
//! The `reproduce` binary (in `gpm-bench`) is the entry point; the
//! legacy per-figure binaries are thin wrappers over
//! [`cli::run_single`].

pub mod artifact;
pub mod cli;
pub mod experiment;
pub mod experiments;
pub mod golden;
pub mod registry;
pub mod runner;
pub mod suite;

pub use artifact::{emit_artifact, emit_svg, ARTIFACT_SCHEMA_VERSION};
pub use experiment::{
    check_gates, metric, Expectation, Experiment, ExperimentOutput, GateResult, Metric, Mode,
    Source, XpEnv,
};
pub use registry::{registry, registry_names};
pub use runner::{phase_table, run_suite, PhaseRow, RunConfig, SuiteReport};
