//! The reproduction runner: schedules registered experiments
//! work-stealing-parallel over one shared [`EvalContext`], writes
//! schema-versioned per-experiment artifacts (which double as resume
//! checkpoints), and aggregates gate results into the suite report.

use crate::artifact::{emit_artifact, ARTIFACT_SCHEMA_VERSION};
use crate::experiment::{check_gates, fingerprint, Experiment, GateResult, Metric, Mode, XpEnv};
use crate::registry::registry;
use gpm_harness::EvalContext;
use gpm_trace::TraceSummary;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How one [`run_suite`] invocation is configured.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Evaluation depth.
    pub mode: Mode,
    /// Case-sensitive substring filters on experiment names; empty
    /// selects the whole registry.
    pub filter: Vec<String>,
    /// Worker threads; 0 = available parallelism.
    pub jobs: usize,
    /// Directory for per-experiment artifacts (the checkpoint store).
    pub out_dir: PathBuf,
    /// Reuse matching checkpointed artifacts instead of re-running.
    pub resume: bool,
    /// Where to write the aggregate report; `None` skips it.
    pub aggregate_path: Option<PathBuf>,
}

impl RunConfig {
    /// The default configuration for `mode`: full registry, auto
    /// parallelism, artifacts under `results/xp`, aggregate under
    /// `results/REPRO_<mode>.json`.
    pub fn for_mode(mode: Mode) -> RunConfig {
        RunConfig {
            mode,
            filter: Vec::new(),
            jobs: 0,
            out_dir: PathBuf::from("results/xp"),
            resume: false,
            aggregate_path: Some(PathBuf::from(format!(
                "results/REPRO_{}.json",
                mode.as_str()
            ))),
        }
    }
}

/// The artifact one experiment run produces — also the resume
/// checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Registry name.
    pub name: String,
    /// Paper exhibit reproduced.
    pub paper_ref: String,
    /// One-line description.
    pub title: String,
    /// Mode the record was produced under.
    pub mode: String,
    /// Identity hash of (name, mode, eval options, schema version) —
    /// resume only reuses records whose fingerprint still matches.
    pub fingerprint: u64,
    /// Whether every gate passed.
    pub passed: bool,
    /// Whether the run function panicked (metrics/gates then empty).
    pub crashed: bool,
    /// Gated metrics.
    pub metrics: Vec<Metric>,
    /// Gate outcomes.
    pub gates: Vec<GateResult>,
    /// Decision-level trace aggregate for the experiment's evaluations.
    pub trace: TraceSummary,
    /// Per-phase span profile of the run (aggregated by leaf span name,
    /// sorted by total time descending). Wall-clock derived —
    /// informational, never gated, and absent in pre-telemetry
    /// artifacts.
    #[serde(default)]
    pub phases: Vec<PhaseRow>,
    /// Wall-clock runtime, milliseconds (informational; never gated).
    pub duration_ms: u64,
    /// The rendered report text.
    pub text: String,
    /// Structured per-row details.
    pub details: Value,
}

/// One line of an experiment's phase-time table: all spans with a given
/// leaf name (e.g. `search.hill_climb`), summed across call paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Leaf span name.
    pub phase: String,
    /// Completed spans.
    pub count: u64,
    /// Wall time inside the phase, milliseconds.
    pub total_ms: f64,
    /// `total_ms` minus time attributed to child spans.
    pub self_ms: f64,
}

/// Collapses a telemetry snapshot into the phase-time table: one row
/// per leaf span name, sorted by total time descending (name as
/// tiebreak).
pub fn phase_table(snapshot: &gpm_telemetry::TelemetrySnapshot) -> Vec<PhaseRow> {
    let mut names: Vec<&str> = snapshot.spans.iter().map(|s| s.name()).collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<PhaseRow> = names
        .into_iter()
        .filter_map(|name| {
            let row = snapshot.span(name)?;
            Some(PhaseRow {
                phase: name.to_string(),
                count: row.count,
                total_ms: row.total_ns as f64 / 1e6,
                self_ms: row.self_ns as f64 / 1e6,
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_ms
            .partial_cmp(&a.total_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.phase.cmp(&b.phase))
    });
    rows
}

/// What [`run_suite`] returns.
#[derive(Debug)]
pub struct SuiteReport {
    /// One record per selected experiment, in registry order.
    pub records: Vec<ExperimentRecord>,
    /// How many records were reused from checkpoints.
    pub resumed: usize,
    /// Whether every experiment passed its gates.
    pub all_passed: bool,
}

/// The identity of one (experiment, mode, protocol) combination.
///
/// Includes the workspace crate version so a checkpoint written by a
/// previous build can never satisfy the current build's gates via
/// `--resume` — bumping the version invalidates every stale checkpoint.
fn run_fingerprint(name: &str, mode: Mode) -> u64 {
    let options = serde_json::to_string(&mode.options()).expect("options serialize");
    fingerprint(&[
        name,
        mode.as_str(),
        &options,
        &ARTIFACT_SCHEMA_VERSION.to_string(),
        env!("CARGO_PKG_VERSION"),
    ])
}

/// Selects registry experiments matching any of `filter` (all when
/// empty), preserving registry order.
pub fn select(filter: &[String]) -> Vec<Experiment> {
    registry()
        .into_iter()
        .filter(|e| filter.is_empty() || filter.iter().any(|f| e.name.contains(f.as_str())))
        .collect()
}

fn artifact_path(out_dir: &Path, name: &str) -> PathBuf {
    out_dir.join(format!("{name}.json"))
}

/// Attempts to reuse a checkpointed record: the artifact must parse,
/// carry the current schema version, and match the run fingerprint.
/// Gates are re-checked against the *current* expectations so registry
/// updates take effect on resume.
fn load_checkpoint(exp: &Experiment, cfg: &RunConfig) -> Option<ExperimentRecord> {
    let path = artifact_path(&cfg.out_dir, exp.name);
    let text = std::fs::read_to_string(&path).ok()?;
    let root: Value = serde_json::from_str(&text).ok()?;
    let version = match &root {
        Value::Map(entries) => entries.iter().find_map(|(k, v)| {
            (matches!(k, Value::Str(s) if s == "schema_version")).then(|| v.as_u64())?
        })?,
        _ => return None,
    };
    if version != ARTIFACT_SCHEMA_VERSION {
        return None;
    }
    let mut record: ExperimentRecord = serde_json::from_str(&text).ok()?;
    if record.fingerprint != run_fingerprint(exp.name, cfg.mode) || record.crashed {
        return None;
    }
    record.gates = check_gates(&exp.expectations, &record.metrics, cfg.mode);
    record.passed = record.gates.iter().all(|g| g.pass);
    Some(record)
}

/// Runs one experiment to a record (catching panics so one crash does
/// not take down the suite).
fn run_one(exp: &Experiment, mode: Mode, ctx: Option<&EvalContext>) -> ExperimentRecord {
    let started = std::time::Instant::now();
    let env = XpEnv::new(mode, ctx);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Scope the whole run under the experiment's registry so any
        // span fired on this thread (model fits, searches, dispatches)
        // lands in its phase table, rooted at `xp.experiment`.
        let _enter = env.telemetry().enter();
        let _span = gpm_telemetry::span("xp.experiment");
        (exp.run)(&env)
    }));
    let trace = env.trace_summary();
    let phases = phase_table(&env.telemetry_snapshot());
    let duration_ms = started.elapsed().as_millis() as u64;
    match outcome {
        Ok(out) => {
            let gates = check_gates(&exp.expectations, &out.metrics, mode);
            let passed = gates.iter().all(|g| g.pass);
            ExperimentRecord {
                name: exp.name.to_string(),
                paper_ref: exp.paper_ref.to_string(),
                title: exp.title.to_string(),
                mode: mode.as_str().to_string(),
                fingerprint: run_fingerprint(exp.name, mode),
                passed,
                crashed: false,
                metrics: out.metrics,
                gates,
                trace,
                phases,
                duration_ms,
                text: out.text,
                details: out.details,
            }
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic");
            ExperimentRecord {
                name: exp.name.to_string(),
                paper_ref: exp.paper_ref.to_string(),
                title: exp.title.to_string(),
                mode: mode.as_str().to_string(),
                fingerprint: run_fingerprint(exp.name, mode),
                passed: false,
                crashed: true,
                metrics: Vec::new(),
                gates: Vec::new(),
                trace,
                phases,
                duration_ms,
                text: format!("PANIC: {msg}"),
                details: Value::Null,
            }
        }
    }
}

/// One line of the aggregate report per experiment.
#[derive(Debug, Serialize)]
struct AggregateRow {
    name: String,
    paper_ref: String,
    passed: bool,
    crashed: bool,
    resumed: bool,
    duration_ms: u64,
    gates_total: usize,
    gates_failed: usize,
}

#[derive(Debug, Serialize)]
struct AggregateReport {
    mode: String,
    experiments: usize,
    passed: usize,
    failed: usize,
    resumed: usize,
    baseline_simulations: u64,
    baseline_cache_hits: u64,
    rows: Vec<AggregateRow>,
    failures: Vec<String>,
}

/// Runs the selected experiments under `cfg`.
///
/// Scheduling is a work-stealing queue: workers atomically claim the
/// next unclaimed experiment, so long experiments (fig11, stability)
/// overlap with cheap ones regardless of registry order. All
/// context-sharing experiments read one [`EvalContext`], so Turbo Core
/// baselines computed by the first experiment are cache hits for every
/// later one.
pub fn run_suite(cfg: &RunConfig) -> SuiteReport {
    let selected = select(&cfg.filter);
    assert!(
        !selected.is_empty(),
        "no experiments match filter {:?}",
        cfg.filter
    );

    // Resume pass: collect reusable checkpoints up front.
    let mut slots: Vec<Option<ExperimentRecord>> = selected
        .iter()
        .map(|e| {
            if cfg.resume {
                load_checkpoint(e, cfg)
            } else {
                None
            }
        })
        .collect();
    let resumed = slots.iter().filter(|s| s.is_some()).count();

    // Build the shared context only if a pending experiment needs it.
    let needs_ctx = selected
        .iter()
        .zip(&slots)
        .any(|(e, s)| e.needs_ctx && s.is_none());
    let ctx = needs_ctx.then(|| {
        eprintln!(
            "building shared evaluation context ({} mode; campaign + RF training)...",
            cfg.mode
        );
        EvalContext::build(cfg.mode.options())
    });

    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.jobs
    }
    .min(pending.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ExperimentRecord)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let at = next.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(at) else {
                    break;
                };
                let exp = &selected[idx];
                eprintln!("[{}] running {} ({})", cfg.mode, exp.name, exp.paper_ref);
                let record = run_one(exp, cfg.mode, ctx.as_ref());
                eprintln!(
                    "[{}] {} {} in {} ms",
                    cfg.mode,
                    exp.name,
                    if record.passed { "passed" } else { "FAILED" },
                    record.duration_ms
                );
                results.lock().push((idx, record));
            });
        }
    })
    .expect("runner worker panicked outside catch_unwind");

    for (idx, record) in results.into_inner() {
        emit_artifact(artifact_path(&cfg.out_dir, &record.name), &record);
        slots[idx] = Some(record);
    }

    let records: Vec<ExperimentRecord> = slots
        .into_iter()
        .map(|s| s.expect("every selected experiment produced a record"))
        .collect();
    let all_passed = records.iter().all(|r| r.passed);

    if let Some(path) = &cfg.aggregate_path {
        let (bs, bh) = ctx
            .as_ref()
            .map(|c| {
                let stats = c.baseline_stats();
                (stats.computed, stats.hits)
            })
            .unwrap_or((0, 0));
        let mut failures = Vec::new();
        for r in &records {
            for g in r.gates.iter().filter(|g| !g.pass) {
                failures.push(format!(
                    "{}: {} expected {} ± {} ({}), got {:?}",
                    r.name,
                    g.metric,
                    g.expected,
                    g.tol,
                    g.source.as_str(),
                    g.actual
                ));
            }
            if r.crashed {
                failures.push(format!("{}: crashed — {}", r.name, r.text));
            }
        }
        let report = AggregateReport {
            mode: cfg.mode.as_str().to_string(),
            experiments: records.len(),
            passed: records.iter().filter(|r| r.passed).count(),
            failed: records.iter().filter(|r| !r.passed).count(),
            resumed,
            baseline_simulations: bs,
            baseline_cache_hits: bh,
            rows: records
                .iter()
                .map(|r| AggregateRow {
                    name: r.name.clone(),
                    paper_ref: r.paper_ref.clone(),
                    passed: r.passed,
                    crashed: r.crashed,
                    resumed: false,
                    duration_ms: r.duration_ms,
                    gates_total: r.gates.len(),
                    gates_failed: r.gates.iter().filter(|g| !g.pass).count(),
                })
                .collect(),
            failures,
        };
        emit_artifact(path, &report);
    }

    SuiteReport {
        records,
        resumed,
        all_passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_filters_by_substring() {
        let all = select(&[]);
        assert!(all.len() >= 27);
        let figs = select(&["fig1".to_string()]);
        let names: Vec<_> = figs.iter().map(|e| e.name).collect();
        assert!(names.contains(&"fig10") && names.contains(&"fig15"));
        assert!(!names.contains(&"fig2"));
        let multi = select(&["table1".to_string(), "table2".to_string()]);
        assert_eq!(multi.len(), 2);
    }

    #[test]
    fn fingerprints_depend_on_mode() {
        assert_ne!(
            run_fingerprint("fig8", Mode::Fast),
            run_fingerprint("fig8", Mode::Full)
        );
        assert_eq!(
            run_fingerprint("fig8", Mode::Fast),
            run_fingerprint("fig8", Mode::Fast)
        );
    }

    #[test]
    fn fingerprints_include_the_crate_version() {
        // Pin the exact composition: name, mode, serialized options,
        // artifact schema version, and the workspace crate version. A
        // checkpoint from a build with any other version hashes
        // differently and is never resumed.
        let options = serde_json::to_string(&Mode::Fast.options()).unwrap();
        assert_eq!(
            run_fingerprint("fig8", Mode::Fast),
            fingerprint(&[
                "fig8",
                "fast",
                &options,
                &ARTIFACT_SCHEMA_VERSION.to_string(),
                env!("CARGO_PKG_VERSION"),
            ])
        );
        // And dropping the version component changes the hash.
        assert_ne!(
            run_fingerprint("fig8", Mode::Fast),
            fingerprint(&[
                "fig8",
                "fast",
                &options,
                &ARTIFACT_SCHEMA_VERSION.to_string(),
            ])
        );
    }

    #[test]
    fn static_suite_runs_parallel_and_checkpoints_resume() {
        let dir = std::env::temp_dir().join("gpm_xp_runner_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = RunConfig {
            mode: Mode::Fast,
            filter: vec!["table".to_string()],
            jobs: 2,
            out_dir: dir.clone(),
            resume: false,
            aggregate_path: Some(dir.join("REPRO_test.json")),
        };
        let report = run_suite(&cfg);
        assert_eq!(report.records.len(), 3);
        assert!(report.all_passed);
        assert_eq!(report.resumed, 0);
        // Order is registry order regardless of completion order.
        let names: Vec<_> = report.records.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["table1", "table2", "table4"]);
        assert!(dir.join("table1.json").exists());
        assert!(dir.join("REPRO_test.json").exists());

        // Resume reuses all three checkpoints byte-for-byte.
        let resumed_cfg = RunConfig {
            resume: true,
            ..cfg
        };
        let resumed = run_suite(&resumed_cfg);
        assert_eq!(resumed.resumed, 3);
        assert!(resumed.all_passed);
        for (a, b) in report.records.iter().zip(resumed.records.iter()) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.text, b.text);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprints_are_not_resumed() {
        let dir = std::env::temp_dir().join("gpm_xp_runner_stale_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = RunConfig {
            mode: Mode::Fast,
            filter: vec!["table1".to_string()],
            jobs: 1,
            out_dir: dir.clone(),
            resume: false,
            aggregate_path: None,
        };
        run_suite(&cfg);
        // A full-mode run must not reuse the fast-mode checkpoint.
        let full_cfg = RunConfig {
            mode: Mode::Full,
            resume: true,
            ..cfg
        };
        let report = run_suite(&full_cfg);
        assert_eq!(report.resumed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
