//! Schema-versioned artifact emission.
//!
//! Every JSON file written under `results/` flows through
//! [`emit_artifact`], which stamps a leading `schema_version` field so
//! downstream consumers (CI gates, the weekly full-reproduction run,
//! external analysis) can sniff compatibility before parsing the body.

use serde::Serialize;
use serde_json::Value;
use std::path::Path;

/// Schema version stamped into every JSON artifact written by
/// [`emit_artifact`]. Bump when a report's shape changes incompatibly.
pub const ARTIFACT_SCHEMA_VERSION: u64 = 1;

/// Serializes `value`, stamps a `schema_version` field into the root
/// object, and writes it pretty-printed to `path` (creating parent
/// directories as needed).
///
/// # Panics
///
/// Panics when `value` does not serialize to a JSON object or the file
/// cannot be written — report emission is not recoverable for the
/// benchmark binaries.
pub fn emit_artifact<T: Serialize + ?Sized>(path: impl AsRef<Path>, value: &T) {
    let path = path.as_ref();
    let mut root = serde_json::to_value(value).expect("artifact serializes");
    match &mut root {
        Value::Map(entries) => entries.insert(
            0,
            (
                Value::Str("schema_version".to_string()),
                Value::U64(ARTIFACT_SCHEMA_VERSION),
            ),
        ),
        _ => panic!("artifact root must be a JSON object: {}", path.display()),
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create artifact directory");
        }
    }
    let text = serde_json::to_string_pretty(&root).expect("artifact serializes");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Writes an SVG chart to `path` (creating parent directories as
/// needed).
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn emit_svg(path: impl AsRef<Path>, svg: &str) {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create chart directory");
        }
    }
    std::fs::write(path, svg).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn artifact_gets_schema_version_stamp() {
        #[derive(Serialize)]
        struct Tiny {
            x: u64,
        }
        let dir = std::env::temp_dir().join("gpm_xp_artifact_test");
        let path = dir.join("tiny.json");
        emit_artifact(&path, &Tiny { x: 7 });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\""));
        assert!(text.contains("\"x\""));
        // The stamp leads the object, so consumers can sniff it cheaply.
        assert!(text.find("schema_version").unwrap() < text.find('x').unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "artifact root must be a JSON object")]
    fn non_object_roots_are_rejected() {
        let dir = std::env::temp_dir().join("gpm_xp_artifact_test");
        emit_artifact(dir.join("arr.json"), &[1u64, 2, 3]);
    }
}
