//! Suite-wide scheme evaluation shared by the experiment
//! implementations (previously copy-pasted across the report binaries).

use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::{EvalContext, EvalOptions, Scheme, SchemeOutcome};
use gpm_workloads::{suite, Workload};

/// Whether the reduced (`fast`) measurement campaign was requested via
/// the `GPM_BENCH_FAST` environment variable (any value but `0`).
pub fn fast_from_env() -> bool {
    std::env::var("GPM_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Builds the shared evaluation context in full or fast mode, printing
/// the mode and the trained model's held-out accuracy (compare Section
/// VI-D).
pub fn bench_context(fast: bool) -> EvalContext {
    eprintln!(
        "building evaluation context ({}; measurement campaign + RF training)...",
        if fast { "fast" } else { "full" }
    );
    let options = if fast {
        EvalOptions::fast()
    } else {
        EvalOptions::default()
    };
    let ctx = EvalContext::build(options);
    eprintln!(
        "  RF held-out accuracy: time MAPE {:.1}%, power MAPE {:.1}% ({} train / {} test samples)",
        ctx.rf_report.time_mape * 100.0,
        ctx.rf_report.power_mape * 100.0,
        ctx.rf_report.train_samples,
        ctx.rf_report.test_samples,
    );
    ctx
}

/// Builds the full-mode evaluation context, printing the trained model's
/// held-out accuracy.
pub fn figure_context() -> EvalContext {
    bench_context(false)
}

/// One evaluated benchmark: outcome plus baseline comparison.
pub struct BenchRow {
    /// The workload evaluated.
    pub workload: Workload,
    /// Full outcome (baseline, profiling, measured, stats).
    pub outcome: SchemeOutcome,
    /// Scheme vs. Turbo Core baseline.
    pub vs_baseline: Comparison,
}

/// Evaluates `scheme` across the full suite in a clean environment.
pub fn evaluate_suite(ctx: &EvalContext, scheme: Scheme) -> Vec<BenchRow> {
    evaluate_suite_with(&ExecEnv::new(), ctx, scheme)
}

/// Evaluates `scheme` across the full suite under `env` — the traced /
/// faulted report paths layer their middleware here.
pub fn evaluate_suite_with(env: &ExecEnv, ctx: &EvalContext, scheme: Scheme) -> Vec<BenchRow> {
    suite()
        .into_iter()
        .map(|workload| {
            eprintln!("  {} on {} ...", scheme.label(), workload.name());
            let outcome = env.evaluate(ctx, &workload, scheme);
            let vs_baseline = Comparison::between(&outcome.baseline, &outcome.measured);
            BenchRow {
                workload,
                outcome,
                vs_baseline,
            }
        })
        .collect()
}

/// Suite-wide averages: arithmetic-mean savings, geometric-mean speedup.
pub fn suite_average(rows: &[BenchRow]) -> Comparison {
    let cs: Vec<Comparison> = rows.iter().map(|r| r.vs_baseline).collect();
    summarize(&cs)
}

/// Comparison of two scheme evaluations of the *same* suite, per
/// benchmark: `a` relative to `b` (energy savings of a over b, speedup of
/// a over b). Used by Figure 9 (MPC vs PPK).
pub fn relative_rows(a: &[BenchRow], b: &[BenchRow]) -> Vec<(String, Comparison)> {
    a.iter()
        .zip(b.iter())
        .map(|(ra, rb)| {
            assert_eq!(
                ra.workload.name(),
                rb.workload.name(),
                "suite order mismatch"
            );
            let c = Comparison::between(&rb.outcome.measured, &ra.outcome.measured);
            (ra.workload.name().to_string(), c)
        })
        .collect()
}

/// Serializable per-benchmark comparison rows for experiment artifacts.
pub fn rows_details(rows: &[BenchRow]) -> serde_json::Value {
    use serde_json::Value;
    Value::Seq(
        rows.iter()
            .map(|r| {
                Value::Map(vec![
                    (
                        Value::Str("benchmark".into()),
                        Value::Str(r.workload.name().to_string()),
                    ),
                    (
                        Value::Str("energy_savings_pct".into()),
                        Value::F64(r.vs_baseline.energy_savings_pct),
                    ),
                    (
                        Value::Str("gpu_energy_savings_pct".into()),
                        Value::F64(r.vs_baseline.gpu_energy_savings_pct),
                    ),
                    (
                        Value::Str("speedup".into()),
                        Value::F64(r.vs_baseline.speedup),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_harness::EvalOptions;
    use gpm_workloads::workload_by_name;

    #[test]
    fn evaluate_one_workload_end_to_end() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let outcome = ExecEnv::new().evaluate(&ctx, &w, Scheme::TheoreticallyOptimal);
        let c = Comparison::between(&outcome.baseline, &outcome.measured);
        assert!(c.energy_savings_pct > 0.0);
    }

    #[test]
    fn relative_rows_requires_same_order() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let a = vec![BenchRow {
            workload: w.clone(),
            outcome: ExecEnv::new().evaluate(&ctx, &w, Scheme::TurboCore),
            vs_baseline: Comparison {
                energy_savings_pct: 0.0,
                gpu_energy_savings_pct: 0.0,
                cpu_energy_savings_pct: 0.0,
                speedup: 1.0,
            },
        }];
        let rel = relative_rows(&a, &a);
        assert_eq!(rel.len(), 1);
        assert!((rel[0].1.speedup - 1.0).abs() < 1e-9);
    }
}
