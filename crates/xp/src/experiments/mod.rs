//! The experiment implementations — the ported bodies of the legacy
//! per-figure report binaries, now run functions over [`crate::XpEnv`].
//!
//! Grouping mirrors the paper: `figures` and `tables` reproduce numbered
//! exhibits, `ablations` the Section IV/VI design studies, `extensions`
//! the repo's beyond-the-paper studies, and `robustness` the
//! fault-injection degradation sweep.

pub mod ablations;
pub mod extensions;
pub mod figures;
pub mod fleet;
pub mod robustness;
pub mod tables;
pub mod telemetry;
