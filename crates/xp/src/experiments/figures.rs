//! Paper figures 2–15 as registry run functions.

use crate::artifact::emit_svg;
use crate::experiment::{metric, ExperimentOutput, XpEnv};
use crate::suite::{evaluate_suite_with, relative_rows, rows_details, suite_average, BenchRow};
use gpm_harness::amortize::amortization;
use gpm_harness::metrics::geo_mean;
use gpm_harness::report::{fmt, Table};
use gpm_harness::svg::{bar_chart, line_chart, BarSeries};
use gpm_harness::traces::{fig2_sweep, fig3_trace};
use gpm_harness::Scheme;
use gpm_model::ErrorSpec;
use gpm_mpc::HorizonMode;
use gpm_sim::{ApuSimulator, KernelCharacteristics};
use gpm_workloads::{
    astar, max_flops, read_global_memory_coalesced, suite, workload_by_name, write_candidates,
};
use std::fmt::Write;

/// The MPC scheme of the headline figures: RF prediction, adaptive
/// horizon at α = 5%, all overheads charged.
fn mpc_headline() -> Scheme {
    Scheme::MpcRf {
        horizon: HorizonMode::default(),
    }
}

fn fig2_panel(
    out: &mut String,
    sim: &ApuSimulator,
    title: &str,
    kernel: &KernelCharacteristics,
) -> f64 {
    let points = fig2_sweep(sim, kernel);
    writeln!(
        out,
        "({title}) — speedup vs [NB3, 2 CUs]; '*' marks the energy-optimal point"
    )
    .unwrap();
    write!(out, "{:>6}", "CUs").unwrap();
    for cu in [2u32, 4, 6, 8] {
        write!(out, "{cu:>10}").unwrap();
    }
    writeln!(out).unwrap();
    for nb in gpm_hw::NbState::ALL {
        write!(out, "{:>6}", nb.to_string()).unwrap();
        for cu in [2u32, 4, 6, 8] {
            let p = points.iter().find(|p| p.nb == nb && p.cu == cu).unwrap();
            let mark = if p.energy_optimal { "*" } else { " " };
            write!(out, "{:>9.2}{mark}", p.speedup).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out).unwrap();
    points.iter().map(|p| p.speedup).fold(0.0, f64::max)
}

/// Figure 2: scaling classes of the four kernel archetypes across NB
/// states × CU counts (no evaluation context needed).
pub fn fig2(_env: &XpEnv) -> ExperimentOutput {
    let sim = ApuSimulator::default();
    let mut out = String::from("Figure 2: GPGPU kernel scaling classes\n\n");
    let compute = fig2_panel(&mut out, &sim, "a: compute-bound — MaxFlops", &max_flops());
    let mem = fig2_panel(
        &mut out,
        &sim,
        "b: memory-bound — readGlobalMemoryCoalesced",
        &read_global_memory_coalesced(),
    );
    let peak = fig2_panel(
        &mut out,
        &sim,
        "c: peak — writeCandidates",
        &write_candidates(),
    );
    let unscalable = fig2_panel(&mut out, &sim, "d: unscalable — astar", &astar());
    ExperimentOutput::new(
        out,
        vec![
            metric("compute_max_speedup", compute),
            metric("memory_max_speedup", mem),
            metric("peak_max_speedup", peak),
            metric("unscalable_max_speedup", unscalable),
        ],
    )
}

/// Figure 3: per-invocation normalized kernel throughput for the three
/// highlighted irregular benchmarks, plus the SVG rendition.
pub fn fig3(_env: &XpEnv) -> ExperimentOutput {
    let sim = ApuSimulator::default();
    let mut out = String::from("Figure 3: normalized kernel throughput by execution order\n\n");
    let mut metrics = Vec::new();
    let mut svg_series = Vec::new();
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).unwrap();
        let trace = fig3_trace(&sim, &w);
        writeln!(out, "{name} ({} invocations):", trace.len()).unwrap();
        for (i, v) in trace.iter().enumerate() {
            let bar = "#".repeat((v * 12.0).round().clamp(0.0, 60.0) as usize);
            writeln!(out, "  {:>3}  {v:>6.2}  {bar}", i + 1).unwrap();
        }
        writeln!(out).unwrap();
        let key = name.to_lowercase();
        metrics.push(metric(format!("{key}_invocations"), trace.len() as f64));
        metrics.push(metric(
            format!("{key}_mean_throughput"),
            trace.iter().sum::<f64>() / trace.len() as f64,
        ));
        svg_series.push(BarSeries {
            name: name.to_string(),
            values: trace,
        });
    }
    let svg = line_chart(
        "Figure 3: kernel throughput (normalized to overall)",
        &svg_series,
        "normalized throughput",
    );
    emit_svg("results/fig3.svg", &svg);
    ExperimentOutput::new(out, metrics)
}

/// Renders the shared two-scheme suite table (per-benchmark savings and
/// speedups, AVERAGE row) and returns the suite averages.
fn two_scheme_table(
    a_name: &str,
    a: &[BenchRow],
    b_name: &str,
    b: &[BenchRow],
) -> (
    String,
    gpm_harness::metrics::Comparison,
    gpm_harness::metrics::Comparison,
) {
    let mut table = Table::new(vec![
        "benchmark".to_string(),
        format!("{a_name} energy savings (%)"),
        format!("{b_name} energy savings (%)"),
        format!("{a_name} speedup"),
        format!("{b_name} speedup"),
    ]);
    for (ra, rb) in a.iter().zip(b.iter()) {
        table.row(vec![
            ra.workload.name().to_string(),
            fmt(ra.vs_baseline.energy_savings_pct, 1),
            fmt(rb.vs_baseline.energy_savings_pct, 1),
            fmt(ra.vs_baseline.speedup, 3),
            fmt(rb.vs_baseline.speedup, 3),
        ]);
    }
    let aa = suite_average(a);
    let ba = suite_average(b);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(aa.energy_savings_pct, 1),
        fmt(ba.energy_savings_pct, 1),
        fmt(aa.speedup, 3),
        fmt(ba.speedup, 3),
    ]);
    (table.render(), aa, ba)
}

/// Figure 4: the limit study — PPK vs Theoretically Optimal, both with
/// perfect knowledge and zero overheads.
pub fn fig4(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let ppk = evaluate_suite_with(&exec, env.ctx(), Scheme::PpkOracle);
    let to = evaluate_suite_with(&exec, env.ctx(), Scheme::TheoreticallyOptimal);
    let (tbl, pa, ta) = two_scheme_table("PPK", &ppk, "TO", &to);
    let out = format!(
        "Figure 4: Predict Previous Kernel vs Theoretically Optimal (perfect knowledge)\n{tbl}"
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("ppk_energy_savings_pct", pa.energy_savings_pct),
            metric("to_energy_savings_pct", ta.energy_savings_pct),
            metric("ppk_speedup", pa.speedup),
            metric("to_speedup", ta.speedup),
        ],
    )
    .with_details(rows_details(&to))
}

/// Figure 8: PPK and MPC vs AMD Turbo Core, RF prediction, overheads
/// charged — the paper's headline exhibit (24.8% savings, 1.8% loss).
pub fn fig8(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let ppk = evaluate_suite_with(&exec, env.ctx(), Scheme::PpkRf);
    let mpc = evaluate_suite_with(&exec, env.ctx(), mpc_headline());
    let (tbl, pa, ma) = two_scheme_table("PPK", &ppk, "MPC", &mpc);
    let mut out = format!(
        "Figure 8: PPK and MPC vs AMD Turbo Core (RF prediction, overheads included)\n{tbl}"
    );
    writeln!(
        out,
        "MPC headline: {:.1}% energy savings, {:.1}% performance loss (paper: 24.8% / 1.8%)",
        ma.energy_savings_pct,
        (1.0 - ma.speedup) * 100.0
    )
    .unwrap();

    let cats: Vec<String> = ppk.iter().map(|r| r.workload.name().to_string()).collect();
    let savings = bar_chart(
        "Figure 8(a): energy savings over AMD Turbo Core",
        &cats,
        &[
            BarSeries {
                name: "PPK".into(),
                values: ppk
                    .iter()
                    .map(|r| r.vs_baseline.energy_savings_pct)
                    .collect(),
            },
            BarSeries {
                name: "MPC".into(),
                values: mpc
                    .iter()
                    .map(|r| r.vs_baseline.energy_savings_pct)
                    .collect(),
            },
        ],
        "energy savings (%)",
        Some(0.0),
    );
    let speedup = bar_chart(
        "Figure 8(b): speedup over AMD Turbo Core",
        &cats,
        &[
            BarSeries {
                name: "PPK".into(),
                values: ppk.iter().map(|r| r.vs_baseline.speedup).collect(),
            },
            BarSeries {
                name: "MPC".into(),
                values: mpc.iter().map(|r| r.vs_baseline.speedup).collect(),
            },
        ],
        "speedup",
        Some(1.0),
    );
    emit_svg("results/fig8a.svg", &savings);
    emit_svg("results/fig8b.svg", &speedup);

    ExperimentOutput::new(
        out,
        vec![
            metric("mpc_energy_savings_pct", ma.energy_savings_pct),
            metric("mpc_perf_loss_pct", (1.0 - ma.speedup) * 100.0),
            metric("mpc_speedup", ma.speedup),
            metric("ppk_energy_savings_pct", pa.energy_savings_pct),
            metric("ppk_speedup", pa.speedup),
        ],
    )
    .with_details(rows_details(&mpc))
}

/// Figure 9: MPC relative to PPK (both RF-driven, overheads charged).
pub fn fig9(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let ppk = evaluate_suite_with(&exec, env.ctx(), Scheme::PpkRf);
    let mpc = evaluate_suite_with(&exec, env.ctx(), mpc_headline());
    let rel = relative_rows(&mpc, &ppk);

    let mut table = Table::new(vec![
        "benchmark",
        "MPC energy savings over PPK (%)",
        "MPC speedup over PPK",
    ]);
    for (name, c) in &rel {
        table.row(vec![
            name.clone(),
            fmt(c.energy_savings_pct, 1),
            fmt(c.speedup, 3),
        ]);
    }
    let avg = gpm_harness::metrics::summarize(&rel.iter().map(|(_, c)| *c).collect::<Vec<_>>());
    let speedups: Vec<f64> = rel.iter().map(|(_, c)| c.speedup).collect();
    let rel_speedup = geo_mean(&speedups);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(avg.energy_savings_pct, 1),
        fmt(rel_speedup, 3),
    ]);

    let mut out = format!(
        "Figure 9: MPC vs PPK (RF prediction, overheads included)\n{}",
        table.render()
    );
    writeln!(
        out,
        "headline: {:.1}% energy savings, {:+.1}% performance (paper: 6.6% / +9.6%)",
        avg.energy_savings_pct,
        (rel_speedup - 1.0) * 100.0
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("rel_energy_savings_pct", avg.energy_savings_pct),
            metric("rel_speedup", rel_speedup),
        ],
    )
}

/// Figure 10: GPU-domain energy savings, plus Section VI-A's CPU/GPU
/// attribution of the chip-wide savings (paper: 75% / 25%).
pub fn fig10(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let ppk = evaluate_suite_with(&exec, env.ctx(), Scheme::PpkRf);
    let mpc = evaluate_suite_with(&exec, env.ctx(), mpc_headline());

    let mut table = Table::new(vec![
        "benchmark",
        "PPK GPU energy savings (%)",
        "MPC GPU energy savings (%)",
        "MPC chip-wide savings (%)",
    ]);
    let mut gpu_sum = 0.0;
    for (p, m) in ppk.iter().zip(mpc.iter()) {
        gpu_sum += m.vs_baseline.gpu_energy_savings_pct;
        table.row(vec![
            p.workload.name().to_string(),
            fmt(p.vs_baseline.gpu_energy_savings_pct, 1),
            fmt(m.vs_baseline.gpu_energy_savings_pct, 1),
            fmt(m.vs_baseline.energy_savings_pct, 1),
        ]);
    }
    let (mut cpu_saved, mut gpu_saved) = (0.0, 0.0);
    for m in &mpc {
        cpu_saved += m.outcome.baseline.cpu_energy_j() - m.outcome.measured.cpu_energy_j();
        gpu_saved += m.outcome.baseline.gpu_energy_j() - m.outcome.measured.gpu_energy_j();
    }
    let total = cpu_saved + gpu_saved;
    let avg_gpu = gpu_sum / mpc.len() as f64;
    let cpu_share = cpu_saved / total * 100.0;
    let mut out = format!(
        "Figure 10: GPU energy savings over AMD Turbo Core\n{}",
        table.render()
    );
    writeln!(
        out,
        "average MPC GPU savings: {avg_gpu:.1}% | savings attribution: CPU {cpu_share:.0}%, GPU {:.0}% (paper: 75%/25%)",
        100.0 - cpu_share
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("avg_gpu_savings_pct", avg_gpu),
            metric("cpu_share_pct", cpu_share),
        ],
    )
}

/// Figure 11: amortization of the initial profiling run — MPC vs PPK
/// under re-execution. Fast mode drops the 100-repeat column.
pub fn fig11(env: &XpEnv) -> ExperimentOutput {
    let repeats: &[usize] = if env.is_fast() {
        &[1, 10]
    } else {
        &[1, 10, 100]
    };
    let mut headers = vec!["benchmark".to_string()];
    for r in repeats {
        headers.push(format!("savings @{r} (%)"));
    }
    headers.push("savings steady (%)".to_string());
    for r in repeats {
        headers.push(format!("speedup @{r}"));
    }
    headers.push("speedup steady".to_string());
    let mut table = Table::new(headers);

    let cols = 2 * (repeats.len() + 1);
    let mut sums = vec![0.0f64; cols];
    let workloads = suite();
    for w in &workloads {
        eprintln!("  amortization on {} ...", w.name());
        let pts = amortization(env.ctx(), w, repeats);
        let mut vals = Vec::with_capacity(cols);
        for p in &pts {
            vals.push(p.energy_savings_pct);
        }
        for p in &pts {
            vals.push(p.speedup);
        }
        for (s, v) in sums.iter_mut().zip(vals.iter()) {
            *s += v;
        }
        let mut row = vec![w.name().to_string()];
        for (i, v) in vals.iter().enumerate() {
            row.push(fmt(*v, if i <= repeats.len() { 1 } else { 3 }));
        }
        table.row(row);
    }
    let n = workloads.len() as f64;
    let mut avg_row = vec!["AVERAGE".to_string()];
    for (i, s) in sums.iter().enumerate() {
        avg_row.push(fmt(s / n, if i <= repeats.len() { 1 } else { 3 }));
    }
    table.row(avg_row);

    let savings_at_1 = sums[0] / n;
    let savings_at_10 = sums[1] / n;
    let savings_steady = sums[repeats.len()] / n;
    let speedup_steady = sums[cols - 1] / n;
    let out = format!(
        "Figure 11: MPC vs PPK with re-execution (cumulative, incl. initial run)\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("savings_at_1", savings_at_1),
            metric("savings_at_10", savings_at_10),
            metric("savings_steady", savings_steady),
            metric("speedup_steady", speedup_steady),
            metric("steady_minus_at_10", savings_steady - savings_at_10),
        ],
    )
}

/// Figure 12: MPC with perfect prediction, full horizon, and no overhead
/// vs the Theoretically Optimal exhaustive solution.
pub fn fig12(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let mpc = evaluate_suite_with(&exec, env.ctx(), Scheme::MpcOracle);
    let to = evaluate_suite_with(&exec, env.ctx(), Scheme::TheoreticallyOptimal);
    let (tbl, ma, ta) = two_scheme_table("MPC", &mpc, "TO", &to);
    let energy_capture = ma.energy_savings_pct / ta.energy_savings_pct * 100.0;
    let perf_capture = ma.speedup / ta.speedup * 100.0;
    let mut out =
        format!("Figure 12: MPC (perfect prediction, full horizon, no overhead) vs TO\n{tbl}");
    writeln!(
        out,
        "MPC captures {energy_capture:.0}% of TO's energy savings (paper: 92%) and {perf_capture:.0}% of its speedup-vs-baseline (paper: 93%)"
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("energy_capture_pct", energy_capture),
            metric("perf_capture_pct", perf_capture),
            metric("mpc_energy_savings_pct", ma.energy_savings_pct),
            metric("to_energy_savings_pct", ta.energy_savings_pct),
        ],
    )
}

/// Figure 13: sensitivity to prediction accuracy — RF vs half-normal
/// error predictors, all at full horizon with no overhead.
pub fn fig13(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let schemes: Vec<(&str, Scheme)> = vec![
        ("RF", Scheme::MpcRfIdealized),
        (
            "Err_15%_10%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_15_10,
            },
        ),
        (
            "Err_5%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_5,
            },
        ),
        (
            "Err_0%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_0,
            },
        ),
    ];
    let results: Vec<(&str, Vec<BenchRow>)> = schemes
        .iter()
        .map(|(name, s)| (*name, evaluate_suite_with(&exec, env.ctx(), *s)))
        .collect();

    let mut headers = vec!["benchmark".to_string()];
    for (name, _) in &results {
        headers.push(format!("{name} savings (%)"));
        headers.push(format!("{name} speedup"));
    }
    let mut table = Table::new(headers);
    let n = results[0].1.len();
    for i in 0..n {
        let mut row = vec![results[0].1[i].workload.name().to_string()];
        for (_, rows) in &results {
            row.push(fmt(rows[i].vs_baseline.energy_savings_pct, 1));
            row.push(fmt(rows[i].vs_baseline.speedup, 3));
        }
        table.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    let mut avgs = Vec::new();
    for (_, rows) in &results {
        let a = suite_average(rows);
        avg_row.push(fmt(a.energy_savings_pct, 1));
        avg_row.push(fmt(a.speedup, 3));
        avgs.push(a);
    }
    table.row(avg_row);

    let out = format!(
        "Figure 13: MPC sensitivity to prediction accuracy (full horizon, no overhead)\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("rf_savings_pct", avgs[0].energy_savings_pct),
            metric("err0_savings_pct", avgs[3].energy_savings_pct),
            metric(
                "err0_minus_rf_pts",
                avgs[3].energy_savings_pct - avgs[0].energy_savings_pct,
            ),
        ],
    )
}

/// Figure 14: MPC's own energy and performance overheads under the
/// worst-case back-to-back kernel assumption.
pub fn fig14(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let mpc = evaluate_suite_with(&exec, env.ctx(), mpc_headline());

    let mut table = Table::new(vec![
        "benchmark",
        "MPC energy overhead (%)",
        "MPC performance overhead (%)",
        "optimizer time (ms)",
        "evaluations",
    ]);
    let (mut e_sum, mut p_sum, mut p_max) = (0.0, 0.0, 0.0f64);
    for row in &mpc {
        let m = &row.outcome.measured;
        let b = &row.outcome.baseline;
        let e_overhead = m.overhead_energy.total_j() / b.total_energy_j() * 100.0;
        let p_overhead = m.overhead_time_s / b.wall_time_s() * 100.0;
        e_sum += e_overhead;
        p_sum += p_overhead;
        p_max = p_max.max(p_overhead);
        let evals = row
            .outcome
            .mpc_stats
            .as_ref()
            .map(|s| s.total_evaluations())
            .unwrap_or(0);
        table.row(vec![
            row.workload.name().to_string(),
            fmt(e_overhead, 3),
            fmt(p_overhead, 3),
            fmt(m.overhead_time_s * 1e3, 3),
            evals.to_string(),
        ]);
    }
    let n = mpc.len() as f64;
    let mut out = format!(
        "Figure 14: MPC energy and performance overheads vs Turbo Core (α = 5%)\n{}",
        table.render()
    );
    writeln!(
        out,
        "averages: energy overhead {:.3}% (paper 0.15%), performance overhead {:.3}% (paper 0.3%)",
        e_sum / n,
        p_sum / n
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("avg_energy_overhead_pct", e_sum / n),
            metric("avg_perf_overhead_pct", p_sum / n),
            metric("max_perf_overhead_pct", p_max),
        ],
    )
}

/// Figure 15: average MPC horizon length as a fraction of each
/// application's kernel count, under the adaptive generator.
pub fn fig15(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let mpc = evaluate_suite_with(&exec, env.ctx(), mpc_headline());

    let mut table = Table::new(vec![
        "benchmark",
        "N kernels",
        "avg horizon",
        "avg horizon (% of N)",
        "zero-horizon decisions",
        "pattern mispredict (%)",
    ]);
    let (mut frac_sum, mut zero_total, mut mis_sum) = (0.0, 0u64, 0.0);
    for row in &mpc {
        let n = row.workload.len();
        let stats = row.outcome.mpc_stats.as_ref().expect("MPC stats");
        let zero = stats.horizons.iter().filter(|&&h| h == 0).count();
        frac_sum += stats.average_horizon_fraction(n) * 100.0;
        zero_total += zero as u64;
        mis_sum += stats.misprediction_rate() * 100.0;
        table.row(vec![
            row.workload.name().to_string(),
            n.to_string(),
            fmt(stats.average_horizon(), 2),
            fmt(stats.average_horizon_fraction(n) * 100.0, 1),
            zero.to_string(),
            fmt(stats.misprediction_rate() * 100.0, 1),
        ]);
    }
    let n = mpc.len() as f64;
    let out = format!(
        "Figure 15: average MPC horizon as a percentage of kernel count\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("avg_horizon_frac_pct", frac_sum / n),
            metric("zero_horizon_total", zero_total as f64),
            metric("avg_mispredict_pct", mis_sum / n),
        ],
    )
}
