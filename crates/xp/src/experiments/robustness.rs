//! Fault-injection robustness: the shared degradation-curve sweep used
//! by both the `robustness` CLI binary and the registry experiment.

use crate::experiment::{metric, ExperimentOutput, XpEnv};
use gpm_faults::FaultPlan;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::Comparison;
use gpm_harness::{EvalContext, Scheme};
use gpm_mpc::HorizonMode;
use gpm_trace::{AggregateSink, TraceSink};
use gpm_workloads::{workload_by_name, Workload};
use serde::{Deserialize, Serialize};
use std::fmt::Write;
use std::sync::Arc;

/// One point of the degradation curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Per-channel fault rate swept at this point.
    pub rate: f64,
    /// Energy savings vs the clean Turbo Core baseline, percent.
    pub energy_savings_pct: f64,
    /// Baseline wall time over degraded wall time (< 1 = slowdown).
    pub speedup: f64,
    /// Throughput-constraint violation, percent of baseline wall time
    /// (0 when the degraded run is at least as fast as the baseline).
    pub violation_pct: f64,
    /// Faults that fired across both scheme invocations.
    pub fault_injections: u64,
    /// Detected-and-recovered events (sanitization, retries, discards).
    pub recoveries: u64,
    /// Fail-safe decisions taken by the governor.
    pub fail_safe_events: u64,
    /// Turbo Core baselines simulated while sweeping this point.
    pub baseline_simulations: u64,
    /// Baseline resolutions served from the shared cache at this point.
    pub baseline_cache_hits: u64,
}

/// The full sweep artifact written by the `robustness` binary and the
/// registry experiment.
#[derive(Debug, Serialize)]
pub struct RobustnessReport {
    /// Swept workload name.
    pub workload: String,
    /// Scheme label under test.
    pub scheme: String,
    /// Fault-plan seed.
    pub seed: u64,
    /// Gate threshold on wall-time slowdown at rates ≤ 0.10.
    pub max_slowdown: f64,
    /// Turbo Core baselines simulated across the sweep.
    pub baseline_simulations: u64,
    /// Baseline resolutions served from the context cache.
    pub baseline_cache_hits: u64,
    /// The degradation curve.
    pub curve: Vec<DegradationPoint>,
}

/// Sweeps `workload` under `scheme` across `rates`, one fresh
/// deterministic [`FaultPlan`] per point, and records the degradation
/// curve.
pub fn degradation_curve(
    ctx: &EvalContext,
    workload: &Workload,
    scheme: Scheme,
    seed: u64,
    rates: &[f64],
) -> Vec<DegradationPoint> {
    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::uniform(seed, rate);
            let agg = Arc::new(AggregateSink::new());
            let sink: Arc<dyn TraceSink> = agg.clone();
            let env = ExecEnv::new().with_trace(sink).with_fault_plan(plan);
            let out = env.evaluate(ctx, workload, scheme);
            let summary = agg.summary();
            let c = Comparison::between(&out.baseline, &out.measured);
            DegradationPoint {
                rate,
                energy_savings_pct: c.energy_savings_pct,
                speedup: c.speedup,
                violation_pct: (1.0 / c.speedup - 1.0).max(0.0) * 100.0,
                fault_injections: summary.fault_injections,
                recoveries: summary.recoveries,
                fail_safe_events: summary.fail_safe_events,
                baseline_simulations: summary.baseline_simulations,
                baseline_cache_hits: summary.baseline_cache_hits,
            }
        })
        .collect()
}

/// Graceful-degradation gate: every point must have finite accounting,
/// points at rate ≤ 0.10 must keep the slowdown under `max_slowdown`,
/// and every nonzero rate must actually fire faults. Returns the list
/// of violations (empty = pass).
pub fn degradation_gate_failures(curve: &[DegradationPoint], max_slowdown: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for p in curve {
        if !p.speedup.is_finite() || !p.energy_savings_pct.is_finite() || p.speedup <= 0.0 {
            failures.push(format!("non-finite accounting at rate {}", p.rate));
        }
        if p.rate <= 0.10 && 1.0 / p.speedup > max_slowdown {
            failures.push(format!(
                "slowdown {:.3} exceeds {max_slowdown} at rate {}",
                1.0 / p.speedup,
                p.rate
            ));
        }
        if p.rate > 0.0 && p.fault_injections == 0 {
            failures.push(format!("no faults fired at rate {}", p.rate));
        }
    }
    failures
}

/// Renders the curve as the sweep table the binary has always printed.
pub fn render_curve(workload: &str, curve: &[DegradationPoint]) -> String {
    let mut out = format!("Robustness sweep: MPC(RF) on {workload}\n");
    writeln!(
        out,
        "{:>6}  {:>9}  {:>7}  {:>9}  {:>7}  {:>9}",
        "rate", "savings%", "speedup", "violat.%", "faults", "recovered"
    )
    .unwrap();
    for p in curve {
        writeln!(
            out,
            "{:>6.3}  {:>9.2}  {:>7.3}  {:>9.2}  {:>7}  {:>9}",
            p.rate,
            p.energy_savings_pct,
            p.speedup,
            p.violation_pct,
            p.fault_injections,
            p.recoveries
        )
        .unwrap();
    }
    out
}

/// The registry experiment: the default kmeans sweep with the standard
/// rates and the graceful-degradation gate folded into metrics. Builds
/// its own context so the baseline-cache single-compute assertion stays
/// valid (the shared registry context is warmed by other experiments).
pub fn robustness(env: &XpEnv) -> ExperimentOutput {
    let rates: &[f64] = if env.is_fast() {
        &[0.0, 0.05, 0.20]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20]
    };
    let seed = 0xFA_15AFE;
    let max_slowdown = 1.5;
    let workload = workload_by_name("kmeans").expect("suite workload");
    let ctx = EvalContext::build(env.options());
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };

    let curve = degradation_curve(&ctx, &workload, scheme, seed, rates);
    let mut failures = degradation_gate_failures(&curve, max_slowdown);

    // The whole sweep shares one context, so the baseline must have been
    // simulated exactly once, with every later rate a cache hit.
    let cache = ctx.baseline_stats();
    if cache.computed != 1 || cache.hits != rates.len() as u64 - 1 {
        failures.push(format!(
            "baseline cache expected 1 compute / {} hits, got {} / {}",
            rates.len() - 1,
            cache.computed,
            cache.hits
        ));
    }

    let mut out = render_curve(workload.name(), &curve);
    writeln!(
        out,
        "baseline cache: {} simulated, {} served from cache",
        cache.computed, cache.hits
    )
    .unwrap();
    for f in &failures {
        writeln!(out, "GATE: {f}").unwrap();
    }
    let clean = &curve[0];
    let worst = curve.last().unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("clean_savings_pct", clean.energy_savings_pct),
            metric("worst_rate_speedup", worst.speedup),
            metric("worst_rate_faults", worst.fault_injections as f64),
            metric("gate_failures", failures.len() as f64),
        ],
    )
}
