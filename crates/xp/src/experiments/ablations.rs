//! Section IV/VI design-study ablations as registry run functions.

use crate::experiment::{metric, ExperimentOutput, XpEnv};
use crate::suite::evaluate_suite_with;
use gpm_governors::search::{exhaustive_best, hill_climb, EnergyEvaluator};
use gpm_governors::OverheadModel;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::{context, turbo_core_baseline, Scheme};
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{permutation_importance, Dataset, RandomForestPredictor, FEATURE_NAMES};
use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor, WindowSolver};
use gpm_sim::predictor::KernelSnapshot;
use gpm_sim::{ApuSimulator, OraclePredictor, SimParams};
use gpm_workloads::{suite, Workload};
use std::fmt::Write;

/// The suite, thinned to every third benchmark in fast mode — used by
/// the context-free full-horizon ablations whose cost the shared fast
/// campaign cannot reduce.
fn ablation_suite(env: &XpEnv) -> Vec<Workload> {
    suite()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !env.is_fast() || i % 3 == 0)
        .map(|(_, w)| w)
        .collect()
}

/// Extension: sweeping the adaptive horizon's overhead budget α (the
/// paper fixes α = 0.05 without a sensitivity study).
pub fn alpha_sweep(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let alphas: &[f64] = if env.is_fast() {
        &[0.01, 0.05, 0.25]
    } else {
        &[0.01, 0.02, 0.05, 0.10, 0.25]
    };

    let mut table = Table::new(vec![
        "alpha",
        "avg energy savings (%)",
        "avg speedup",
        "avg horizon (% of N)",
        "avg perf overhead (%)",
    ]);
    let mut at_005 = (0.0, 1.0);
    for &alpha in alphas {
        eprintln!("  alpha = {alpha} ...");
        let mut cs = Vec::new();
        let mut horizon_frac_sum = 0.0;
        let mut overhead_sum = 0.0;
        let workloads = suite();
        for w in &workloads {
            let out = exec.evaluate(
                env.ctx(),
                w,
                Scheme::MpcRf {
                    horizon: HorizonMode::Adaptive { alpha },
                },
            );
            cs.push(Comparison::between(&out.baseline, &out.measured));
            let stats = out.mpc_stats.expect("MPC stats");
            horizon_frac_sum += stats.average_horizon_fraction(w.len());
            overhead_sum += out.measured.overhead_time_s / out.baseline.wall_time_s();
        }
        let a = summarize(&cs);
        let n = workloads.len() as f64;
        if (alpha - 0.05).abs() < 1e-12 {
            at_005 = (a.energy_savings_pct, a.speedup);
        }
        table.row(vec![
            fmt(alpha, 2),
            fmt(a.energy_savings_pct, 1),
            fmt(a.speedup, 3),
            fmt(horizon_frac_sum / n * 100.0, 1),
            fmt(overhead_sum / n * 100.0, 3),
        ]);
    }
    let out = format!(
        "Adaptive-horizon budget sweep (the paper fixes alpha = 0.05)\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("savings_alpha_005", at_005.0),
            metric("speedup_alpha_005", at_005.1),
        ],
    )
}

/// Section VI-E ablation: adaptive horizon vs full horizon, with and
/// without overheads, plus the short-kernel regime.
pub fn horizon_ablation(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let ctx = env.ctx();
    let adaptive = evaluate_suite_with(
        &exec,
        ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let full = evaluate_suite_with(
        &exec,
        ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::Full,
        },
    );
    let ideal = evaluate_suite_with(&exec, ctx, Scheme::MpcRfIdealized);

    let mut table = Table::new(vec![
        "benchmark",
        "adaptive savings (%)",
        "full-horizon savings (%)",
        "no-overhead savings (%)",
        "adaptive speedup",
        "full-horizon speedup",
    ]);
    for ((a, f), i) in adaptive.iter().zip(full.iter()).zip(ideal.iter()) {
        table.row(vec![
            a.workload.name().to_string(),
            fmt(a.vs_baseline.energy_savings_pct, 1),
            fmt(f.vs_baseline.energy_savings_pct, 1),
            fmt(i.vs_baseline.energy_savings_pct, 1),
            fmt(a.vs_baseline.speedup, 3),
            fmt(f.vs_baseline.speedup, 3),
        ]);
    }
    let aa = crate::suite::suite_average(&adaptive);
    let fa = crate::suite::suite_average(&full);
    let ia = crate::suite::suite_average(&ideal);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(aa.energy_savings_pct, 1),
        fmt(fa.energy_savings_pct, 1),
        fmt(ia.energy_savings_pct, 1),
        fmt(aa.speedup, 3),
        fmt(fa.speedup, 3),
    ]);

    let mut out = format!(
        "Section VI-E ablation: adaptive vs full horizon\n{}",
        table.render()
    );
    writeln!(
        out,
        "adaptive: {:.1}% savings / {:.1}% perf loss; full horizon w/ overheads: {:.1}% / {:.1}% (paper: 24.8/1.8 vs 15.4/12.8)",
        aa.energy_savings_pct,
        (1.0 - aa.speedup) * 100.0,
        fa.energy_savings_pct,
        (1.0 - fa.speedup) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "no-overhead full horizon saves {:.1}% more energy than adaptive (paper: 2.6%)",
        ia.energy_savings_pct - aa.energy_savings_pct
    )
    .unwrap();

    // Short-kernel regime: the paper's benchmarks have millisecond-scale
    // kernels, so optimizer time is ~10× larger *relative to kernel time*
    // than in our simulator. Scale the overhead model up accordingly to
    // reproduce the full-horizon collapse of Section VI-E.
    let short = OverheadModel {
        per_eval_s: 200e-6,
        base_s: 300e-6,
    };
    let adaptive_short = evaluate_suite_with(
        &exec,
        ctx,
        Scheme::MpcRfOverhead {
            horizon: HorizonMode::default(),
            overhead: short,
        },
    );
    let full_short = evaluate_suite_with(
        &exec,
        ctx,
        Scheme::MpcRfOverhead {
            horizon: HorizonMode::Full,
            overhead: short,
        },
    );
    let asr = crate::suite::suite_average(&adaptive_short);
    let fsr = crate::suite::suite_average(&full_short);
    writeln!(
        out,
        "\nshort-kernel regime (optimizer cost x10 relative to kernels):"
    )
    .unwrap();
    writeln!(
        out,
        "  adaptive: {:.1}% savings / {:.1}% perf loss; full horizon: {:.1}% / {:.1}%",
        asr.energy_savings_pct,
        (1.0 - asr.speedup) * 100.0,
        fsr.energy_savings_pct,
        (1.0 - fsr.speedup) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  (paper: adaptive 24.8%/1.8% vs full-horizon 15.4%/12.8%)"
    )
    .unwrap();

    ExperimentOutput::new(
        out,
        vec![
            metric("adaptive_savings_pct", aa.energy_savings_pct),
            metric("full_savings_pct", fa.energy_savings_pct),
            metric(
                "ideal_minus_adaptive_pts",
                ia.energy_savings_pct - aa.energy_savings_pct,
            ),
            metric("short_adaptive_savings_pct", asr.energy_savings_pct),
            metric("short_full_perf_loss_pct", (1.0 - fsr.speedup) * 100.0),
        ],
    )
}

/// Section VI-D: Random-Forest prediction accuracy — random split,
/// leave-one-kernel-out, and permutation feature importance.
pub fn model_accuracy(env: &XpEnv) -> ExperimentOutput {
    let options = env.options();
    let sim = ApuSimulator::new(options.sim_params.clone());
    let kernels = context::training_kernels();
    let space = context::training_space(options.train_config_stride);
    eprintln!(
        "campaign: {} kernels x {} configurations = {} samples",
        kernels.len(),
        space.len(),
        kernels.len() * space.len()
    );
    let dataset = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);

    let (_, report) = RandomForestPredictor::train_and_evaluate(
        &dataset,
        &options.forest,
        options.test_fraction,
        options.seed,
    );
    let mut out = format!(
        "Random split: time MAPE {:.1}%  power MAPE {:.1}%  time R2 {:.3}  power R2 {:.3}\n\
         (paper reports 25% performance MAPE and 12% power MAPE)\n\n",
        report.time_mape * 100.0,
        report.power_mape * 100.0,
        report.time_r2,
        report.power_r2
    );

    let mut table = Table::new(vec!["held-out kernel", "time MAPE (%)", "power MAPE (%)"]);
    let probes: &[&str] = if env.is_fast() {
        &["mandelbulb", "spmv_ellpackr"]
    } else {
        &[
            "mandelbulb",
            "lbm_collide_stream",
            "spmv_ellpackr",
            "kmeans_swap",
            "mergeSortPass_F5",
        ]
    };
    let mut sums = (0.0, 0.0);
    for probe in probes {
        let (train, test) = dataset.split_leave_kernel_out(probe);
        let rf = RandomForestPredictor::train(&train, &options.forest, options.seed);
        let r = rf.evaluate(&test, train.len());
        sums.0 += r.time_mape;
        sums.1 += r.power_mape;
        table.row(vec![
            probe.to_string(),
            fmt(r.time_mape * 100.0, 1),
            fmt(r.power_mape * 100.0, 1),
        ]);
    }
    let loko_time = sums.0 / probes.len() as f64 * 100.0;
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(loko_time, 1),
        fmt(sums.1 / probes.len() as f64 * 100.0, 1),
    ]);
    writeln!(out, "Leave-one-kernel-out accuracy:\n{}", table.render()).unwrap();

    let (train, test) = dataset.split(0.2, options.seed);
    let rf = RandomForestPredictor::train(&train, &options.forest, options.seed);
    let time_imp = permutation_importance(rf.time_forest(), &test, |s| s.time_s.max(1e-12).ln(), 7);
    let power_imp = permutation_importance(rf.power_forest(), &test, |s| s.gpu_power_w, 7);
    let mut imp_table = Table::new(vec!["feature", "time importance", "power importance"]);
    for (i, name) in FEATURE_NAMES.iter().enumerate() {
        imp_table.row(vec![
            name.to_string(),
            fmt(time_imp[i].score(), 3),
            fmt(power_imp[i].score(), 3),
        ]);
    }
    writeln!(
        out,
        "Permutation feature importance (relative RMSE increase):\n{}",
        imp_table.render()
    )
    .unwrap();

    ExperimentOutput::new(
        out,
        vec![
            metric("time_mape_pct", report.time_mape * 100.0),
            metric("power_mape_pct", report.power_mape * 100.0),
            metric("loko_time_mape_pct", loko_time),
        ],
    )
}

/// Section IV-A1a ablation: search cost of the greedy hill climb vs
/// exhaustive per-kernel search, and of heuristic MPC vs an exhaustive
/// window search.
pub fn search_cost(env: &XpEnv) -> ExperimentOutput {
    let sim = ApuSimulator::noiseless();
    let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
    let space = ConfigSpace::paper_campaign();

    let mut table = Table::new(vec![
        "kernel",
        "exhaustive evals",
        "hill-climb evals",
        "reduction",
        "energy gap (%)",
    ]);
    let mut kernels = Vec::new();
    for w in suite() {
        if let Some(k) = w.kernels().first() {
            kernels.push(k.clone());
        }
    }
    let (mut red_sum, mut n) = (0.0, 0);
    for k in &kernels {
        let out = sim.evaluate_exact(k, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k.clone());
        let cap = out.time_s * 1.1;
        let (ex, ex_evals) = exhaustive_best(&eval, &snap, &space, cap);
        let (hc, hc_evals) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap);
        let (Some(ex), Some(hc)) = (ex, hc) else {
            continue;
        };
        let reduction = ex_evals as f64 / hc_evals as f64;
        red_sum += reduction;
        n += 1;
        table.row(vec![
            k.name().to_string(),
            ex_evals.to_string(),
            hc_evals.to_string(),
            format!("{reduction:.1}x"),
            fmt((hc.energy_j / ex.energy_j - 1.0) * 100.0, 2),
        ]);
    }
    let perkernel = red_sum / n as f64;
    let mut out = format!(
        "Search-cost ablation (per-kernel): hill climb vs exhaustive\n{}",
        table.render()
    );
    writeln!(out, "average reduction: {perkernel:.1}x (paper: ~19x)\n").unwrap();

    // System level: measured MPC evaluations vs the exhaustive window
    // bound, on the shared context.
    let exec = env.exec();
    let mpc = evaluate_suite_with(
        &exec,
        env.ctx(),
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let mut table2 = Table::new(vec![
        "benchmark",
        "MPC evals (measured)",
        "exhaustive-MPC evals (N*M*avgH)",
        "reduction",
    ]);
    let mut total_ratio = 0.0;
    for row in &mpc {
        let stats = row.outcome.mpc_stats.as_ref().unwrap();
        let measured = stats.total_evaluations().max(1);
        let n_k = row.workload.len() as f64;
        let avg_h = stats.average_horizon().max(1.0);
        // Exhaustive (non-backtracking) MPC would price every config for
        // every window kernel; backtracking is exponentially worse still.
        let exhaustive = n_k * 336.0 * avg_h;
        let ratio = exhaustive / measured as f64;
        total_ratio += ratio;
        table2.row(vec![
            row.workload.name().to_string(),
            measured.to_string(),
            fmt(exhaustive, 0),
            format!("{ratio:.0}x"),
        ]);
    }
    let system = total_ratio / mpc.len() as f64;
    writeln!(
        out,
        "Search-cost ablation (system): measured MPC vs exhaustive window search\n{}",
        table2.render()
    )
    .unwrap();
    writeln!(
        out,
        "average reduction: {system:.0}x (paper: ~65x vs backtracking MPC)"
    )
    .unwrap();

    ExperimentOutput::new(
        out,
        vec![
            metric("perkernel_reduction", perkernel),
            metric("system_reduction", system),
        ],
    )
}

/// Section IV-A1a ablation: profiling-derived search order vs plain
/// execution order in the greedy window optimizer.
pub fn search_order_ablation(env: &XpEnv) -> ExperimentOutput {
    let sim = ApuSimulator::default();
    let exec = env.exec();
    let mut table = Table::new(vec![
        "benchmark",
        "ordered savings (%)",
        "exec-order savings (%)",
        "ordered speedup",
        "exec-order speedup",
    ]);

    let mut ordered_cs = Vec::new();
    let mut plain_cs = Vec::new();
    for w in ablation_suite(env) {
        eprintln!("  search-order ablation on {} ...", w.name());
        let (baseline, target) = turbo_core_baseline(&sim, &w);
        let mut row = vec![w.name().to_string()];
        let mut comparisons = Vec::new();
        for use_search_order in [true, false] {
            let cfg = MpcConfig {
                horizon_mode: HorizonMode::Full,
                overhead: OverheadModel::free(),
                store_truth: true,
                use_search_order,
                ..MpcConfig::default()
            };
            let mut gov = MpcGovernor::new(OraclePredictor::new(&sim), sim.params().clone(), cfg);
            exec.run(&sim, &w, &mut gov, target, 0, true);
            let measured = exec.run(&sim, &w, &mut gov, target, 1, true);
            comparisons.push(Comparison::between(&baseline, &measured));
        }
        row.push(fmt(comparisons[0].energy_savings_pct, 1));
        row.push(fmt(comparisons[1].energy_savings_pct, 1));
        row.push(fmt(comparisons[0].speedup, 3));
        row.push(fmt(comparisons[1].speedup, 3));
        table.row(row);
        ordered_cs.push(comparisons[0]);
        plain_cs.push(comparisons[1]);
    }
    let oa = summarize(&ordered_cs);
    let pa = summarize(&plain_cs);
    table.row(vec![
        "AVERAGE".into(),
        fmt(oa.energy_savings_pct, 1),
        fmt(pa.energy_savings_pct, 1),
        fmt(oa.speedup, 3),
        fmt(pa.speedup, 3),
    ]);

    let mut out = format!(
        "Search-order ablation: Section IV-A1a ordering vs plain execution order\n{}",
        table.render()
    );
    writeln!(
        out,
        "search order buys {:+.1} pts of savings and {:+.1}% performance on average",
        oa.energy_savings_pct - pa.energy_savings_pct,
        (oa.speedup / pa.speedup - 1.0) * 100.0
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("ordered_savings_pct", oa.energy_savings_pct),
            metric("plain_savings_pct", pa.energy_savings_pct),
            metric(
                "order_gain_pts",
                oa.energy_savings_pct - pa.energy_savings_pct,
            ),
        ],
    )
}

/// Section IV-A1a ablation: the greedy window heuristic vs the exact
/// Eq. 3 DP window optimization.
pub fn window_solver_ablation(env: &XpEnv) -> ExperimentOutput {
    let sim = ApuSimulator::default();
    let exec = env.exec();
    let mut table = Table::new(vec![
        "benchmark",
        "greedy savings (%)",
        "exact savings (%)",
        "greedy speedup",
        "exact speedup",
        "greedy evals",
        "exact evals",
        "cost ratio",
    ]);

    let mut ratios = Vec::new();
    let mut greedy_cs = Vec::new();
    let mut exact_cs = Vec::new();
    for w in ablation_suite(env) {
        eprintln!("  window-solver ablation on {} ...", w.name());
        let (baseline, target) = turbo_core_baseline(&sim, &w);
        let mut row: Vec<String> = vec![w.name().to_string()];
        let mut evals = [0u64; 2];
        let mut comparisons = Vec::new();
        for (i, solver) in [WindowSolver::Greedy, WindowSolver::ExactDp]
            .iter()
            .enumerate()
        {
            let cfg = MpcConfig {
                horizon_mode: HorizonMode::Full,
                overhead: OverheadModel::free(),
                store_truth: true,
                solver: *solver,
                ..MpcConfig::default()
            };
            let mut gov = MpcGovernor::new(OraclePredictor::new(&sim), sim.params().clone(), cfg);
            exec.run(&sim, &w, &mut gov, target, 0, true);
            let measured = exec.run(&sim, &w, &mut gov, target, 1, true);
            let c = Comparison::between(&baseline, &measured);
            comparisons.push(c);
            row.push(fmt(c.energy_savings_pct, 1));
            row.push(fmt(c.speedup, 3));
            evals[i] = gov.stats().total_evaluations();
        }
        // Reorder: savings pair, speedup pair, eval columns.
        let (g_sav, g_spd, e_sav, e_spd) = (
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
        );
        let ratio = evals[1] as f64 / evals[0].max(1) as f64;
        ratios.push(ratio);
        greedy_cs.push(comparisons[0]);
        exact_cs.push(comparisons[1]);
        table.row(vec![
            row[0].clone(),
            g_sav,
            e_sav,
            g_spd,
            e_spd,
            evals[0].to_string(),
            evals[1].to_string(),
            format!("{ratio:.0}x"),
        ]);
    }

    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let ga = summarize(&greedy_cs);
    let ea = summarize(&exact_cs);
    let mut out = format!(
        "Window-solver ablation: greedy heuristic vs exact Eq. 3 DP (oracle, full horizon)\n{}",
        table.render()
    );
    writeln!(
        out,
        "average search-cost ratio: {avg:.0}x (paper: ~65x vs exhaustive backtracking MPC)"
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("greedy_savings_pct", ga.energy_savings_pct),
            metric("exact_savings_pct", ea.energy_savings_pct),
            metric("avg_cost_ratio", avg),
        ],
    )
}
