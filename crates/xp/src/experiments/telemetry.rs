//! Telemetry overhead study: the gate that keeps the observability
//! layer honest. Measures the hot-path cost of a live registry against
//! a clean environment (interleaved A/B, min-of-rounds), verifies the
//! instrumented run is decision-byte-identical, and round-trips the
//! registry through the Prometheus text exposition validator.

use crate::experiment::{metric, ExperimentOutput, XpEnv};
use gpm_harness::report::{fmt, Table};
use gpm_harness::{ExecEnv, Scheme};
use gpm_mpc::HorizonMode;
use gpm_telemetry::{validate_prometheus, Telemetry};
use gpm_workloads::workload_by_name;
use std::fmt::Write;
use std::time::Instant;

/// Default ceiling on acceptable hot-path overhead, percent
/// (`GPM_TELEMETRY_MAX_OVERHEAD_PCT` overrides). The paper-fidelity
/// budget is 5%; fast mode shrinks decisions to a few microseconds, so
/// the fixed ~100 ns/span cost is relatively inflated and gets
/// headroom. Debug builds inflate the per-span constant further (no
/// inlining, TLS checks) and loosen both ceilings; the release
/// `telemetry_overhead` bench binary is the tight production gate.
fn max_overhead_pct(fast: bool) -> f64 {
    if let Some(pct) = std::env::var("GPM_TELEMETRY_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return pct;
    }
    match (fast, cfg!(debug_assertions)) {
        (false, false) => 5.0,
        (false, true) => 25.0,
        (true, false) => 12.0,
        (true, true) => 40.0,
    }
}

/// `telemetry_overhead`: A/B-measures the cost of running every MPC
/// evaluation under a live telemetry registry and gates that
/// instrumentation stays in the noise, never changes a decision byte,
/// and exports valid Prometheus text.
pub fn telemetry_overhead(env: &XpEnv) -> ExperimentOutput {
    let workloads: Vec<_> = if env.is_fast() {
        ["kmeans", "lud"].iter().map(|n| name_of(n)).collect()
    } else {
        ["kmeans", "lud", "Spmv", "hybridsort"]
            .iter()
            .map(|n| name_of(n))
            .collect()
    };
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let rounds = if env.is_fast() { 5 } else { 9 };

    // Interleaved A/B: each round times one full pass (all workloads)
    // clean, then one instrumented. min-of-rounds on both sides
    // discards scheduler noise; interleaving cancels drift (thermal,
    // cache warm-up) that would bias a block design. The loop runs on
    // its own thread because the runner scopes this experiment under
    // the per-experiment registry — on that thread even a plain
    // `ExecEnv` fires spans, and the clean side must be truly dark.
    let telemetry = Telemetry::new();
    let (clean_fp, instrumented_fp, best_clean_s, best_instr_s) = std::thread::scope(|s| {
        s.spawn(|| {
            let clean_env = ExecEnv::new();
            let instrumented_env = ExecEnv::new().with_telemetry(telemetry.clone());
            let mut clean_fp = Vec::new();
            let mut instrumented_fp = Vec::new();
            let mut best_clean_s = f64::INFINITY;
            let mut best_instr_s = f64::INFINITY;
            for round in 0..rounds {
                let t0 = Instant::now();
                let a: Vec<String> = workloads
                    .iter()
                    .map(|w| decisions(&clean_env, env, w, scheme))
                    .collect();
                best_clean_s = best_clean_s.min(t0.elapsed().as_secs_f64());
                let t1 = Instant::now();
                let b: Vec<String> = workloads
                    .iter()
                    .map(|w| decisions(&instrumented_env, env, w, scheme))
                    .collect();
                best_instr_s = best_instr_s.min(t1.elapsed().as_secs_f64());
                if round == 0 {
                    clean_fp = a;
                    instrumented_fp = b;
                }
            }
            (clean_fp, instrumented_fp, best_clean_s, best_instr_s)
        })
        .join()
        .expect("telemetry A/B thread panicked")
    });
    let overhead_pct = ((best_instr_s - best_clean_s) / best_clean_s * 100.0).max(0.0);
    let ceiling = max_overhead_pct(env.is_fast());
    let byte_identical = clean_fp == instrumented_fp;

    // Round-trip: everything the registry accumulated must render as
    // format-valid Prometheus text exposition.
    let snapshot = telemetry.snapshot();
    let prom = snapshot.to_prometheus();
    let prom_check = validate_prometheus(&prom);
    let dispatches = snapshot.counter("gpm_dispatches_total").unwrap_or(0);
    let dispatch_spans = snapshot.span("env.dispatch").map_or(0, |s| s.count);

    let mut table = Table::new(vec!["side", "best pass s"]);
    table.row(vec!["clean".into(), fmt(best_clean_s, 4)]);
    table.row(vec!["instrumented".into(), fmt(best_instr_s, 4)]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Telemetry overhead — {} workloads x {} rounds, interleaved A/B, min-of-rounds",
        workloads.len(),
        rounds
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "hot-path overhead: {}% (ceiling {}%)",
        fmt(overhead_pct, 2),
        fmt(ceiling, 1)
    );
    let _ = writeln!(
        out,
        "decisions: {} under instrumentation",
        if byte_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    match &prom_check {
        Ok(stats) => {
            let _ = writeln!(
                out,
                "prometheus export: valid ({} families, {} samples, {} histograms); \
                 {dispatches} dispatches / {dispatch_spans} dispatch spans",
                stats.families, stats.samples, stats.histograms
            );
        }
        Err(e) => {
            let _ = writeln!(out, "prometheus export: INVALID — {e}");
        }
    }

    ExperimentOutput::new(
        out,
        vec![
            metric("overhead_pct", overhead_pct),
            metric(
                "overhead_ok",
                if overhead_pct <= ceiling { 1.0 } else { 0.0 },
            ),
            metric("byte_identical", if byte_identical { 1.0 } else { 0.0 }),
            metric(
                "prometheus_valid",
                if prom_check.is_ok() { 1.0 } else { 0.0 },
            ),
            metric(
                "spans_match_dispatches",
                if dispatches > 0 && dispatches == dispatch_spans {
                    1.0
                } else {
                    0.0
                },
            ),
        ],
    )
}

fn name_of(n: &str) -> gpm_workloads::Workload {
    workload_by_name(n).unwrap_or_else(|| panic!("workload {n} not in suite"))
}

/// Evaluates one workload and fingerprints the decided trajectory —
/// the byte-identity side of the A/B.
fn decisions(exec: &ExecEnv, env: &XpEnv, w: &gpm_workloads::Workload, scheme: Scheme) -> String {
    let out = exec.evaluate(env.ctx(), w, scheme);
    serde_json::to_string(&out.measured.per_kernel).expect("trajectory serializes")
}
