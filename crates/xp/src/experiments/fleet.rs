//! Fleet-scaling study: the sharded multi-device service of `gpm-fleet`
//! run at 1, 2, and auto workers over the canonical mixed scenario, with
//! the byte-identity determinism contract as a hard gate.

use crate::experiment::{metric, ExperimentOutput, XpEnv};
use gpm_fleet::{FleetScenario, FleetService};
use gpm_harness::report::{fmt, Table};
use std::fmt::Write;
use std::time::Instant;

/// `fleet_scaling`: runs the canonical mixed fleet scenario (8 shards
/// fast / 16 full, staggered arrivals, faulty and healthy shards) at
/// worker counts 1, 2, and auto; verifies every serialized artifact is
/// byte-identical; reports simulated fleet throughput and host-side
/// scaling.
pub fn fleet_scaling(env: &XpEnv) -> ExperimentOutput {
    let (shards, jobs_per_shard) = if env.is_fast() { (8, 2) } else { (16, 4) };
    let scenario = FleetScenario::mixed(0xF1EE7, shards, jobs_per_shard);
    eprintln!(
        "  fleet_scaling: {} shards x {} jobs at workers 1/2/auto...",
        shards, jobs_per_shard
    );

    let mut table = Table::new(vec!["workers", "wall s", "jobs/s (host)"]);
    let mut artifacts: Vec<String> = Vec::new();
    let mut last = None;
    let mut wall_1 = 0.0f64;
    let mut wall_auto = 0.0f64;
    let mut auto_workers = 1usize;
    for &workers in &[1usize, 2, 0] {
        let svc = FleetService::new(env.ctx().clone()).with_workers(workers);
        let effective = svc.effective_workers(scenario.shards.len());
        let start = Instant::now();
        let report = svc.run(&scenario);
        let wall = start.elapsed().as_secs_f64();
        if workers == 1 {
            wall_1 = wall;
        } else if workers == 0 {
            wall_auto = wall;
            auto_workers = effective;
        }
        table.row(vec![
            format!("{effective}"),
            fmt(wall, 3),
            fmt(scenario.total_jobs() as f64 / wall, 1),
        ]);
        artifacts.push(report.to_artifact_json());
        last = Some(report);
    }
    let report = last.expect("three runs completed");
    let deterministic = artifacts.iter().all(|a| *a == artifacts[0]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet scaling — {} ({} shards, {} jobs, seed {:#x})",
        scenario.name, report.rollup.shards, report.rollup.jobs, scenario.seed
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "simulated: makespan {} s, throughput {} GI/s, energy {} J",
        fmt(report.rollup.makespan_s, 3),
        fmt(report.rollup.throughput_gips, 2),
        fmt(report.rollup.energy_j, 1),
    );
    let _ = writeln!(
        out,
        "determinism: artifacts at 1/2/auto workers {}",
        if deterministic {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );

    ExperimentOutput::new(
        out,
        vec![
            metric("deterministic", if deterministic { 1.0 } else { 0.0 }),
            metric("shards", report.rollup.shards as f64),
            metric("jobs", report.rollup.jobs as f64),
            metric("fleet_throughput_gips", report.rollup.throughput_gips),
            metric("fleet_energy_j", report.rollup.energy_j),
            metric("fail_safe_entries", report.rollup.fail_safe_entries as f64),
            metric("fault_injections", report.rollup.fault_injections as f64),
            metric("auto_workers", auto_workers as f64),
            metric(
                "auto_speedup_over_1",
                if wall_auto > 0.0 {
                    wall_1 / wall_auto
                } else {
                    1.0
                },
            ),
        ],
    )
}
