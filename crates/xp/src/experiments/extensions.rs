//! Beyond-the-paper extension studies as registry run functions.

use crate::artifact::emit_artifact;
use crate::experiment::{metric, ExperimentOutput, XpEnv};
use crate::suite::{evaluate_suite_with, suite_average};
use gpm_governors::EqualizerMode;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::{context, EvalContext, EvalOptions, Scheme};
use gpm_hw::ConfigSpace;
use gpm_mpc::HorizonMode;
use gpm_sim::{ApuSimulator, ReplayPlatform, SimParams};
use gpm_workloads::{extended_suite, generate_population, suite, GeneratorParams};
use std::fmt::Write;

fn mpc_headline() -> Scheme {
    Scheme::MpcRf {
        horizon: HorizonMode::default(),
    }
}

/// Extended baseline comparison: every implemented policy on the full
/// suite — Turbo Core, Equalizer (both modes), PPK, MPC, and TO.
pub fn baselines(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let schemes: Vec<(&str, Scheme)> = vec![
        (
            "Equalizer(perf)",
            Scheme::Equalizer {
                mode: EqualizerMode::Performance,
            },
        ),
        (
            "Equalizer(eff)",
            Scheme::Equalizer {
                mode: EqualizerMode::Efficiency,
            },
        ),
        ("PPK(RF)", Scheme::PpkRf),
        ("MPC(RF)", mpc_headline()),
        ("TO", Scheme::TheoreticallyOptimal),
    ];

    let mut headers = vec!["benchmark".to_string()];
    for (name, _) in &schemes {
        headers.push(format!("{name} sav%"));
        headers.push(format!("{name} spd"));
    }
    let mut table = Table::new(headers);

    let results: Vec<_> = schemes
        .iter()
        .map(|(n, s)| (*n, evaluate_suite_with(&exec, env.ctx(), *s)))
        .collect();
    let n = results[0].1.len();
    for i in 0..n {
        let mut row = vec![results[0].1[i].workload.name().to_string()];
        for (_, rows) in &results {
            row.push(fmt(rows[i].vs_baseline.energy_savings_pct, 1));
            row.push(fmt(rows[i].vs_baseline.speedup, 3));
        }
        table.row(row);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    let mut avgs = Vec::new();
    for (_, rows) in &results {
        let a = suite_average(rows);
        avg.push(fmt(a.energy_savings_pct, 1));
        avg.push(fmt(a.speedup, 3));
        avgs.push(a);
    }
    table.row(avg);

    let out = format!(
        "Extended baselines vs AMD Turbo Core (energy savings %, speedup)\n{}\
         note: Equalizer reacts without a performance target, so it trades\n\
         performance freely; PPK/MPC are constrained to Turbo Core throughput.\n",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("eq_perf_savings_pct", avgs[0].energy_savings_pct),
            metric("ppk_savings_pct", avgs[2].energy_savings_pct),
            metric("mpc_savings_pct", avgs[3].energy_savings_pct),
            metric("to_savings_pct", avgs[4].energy_savings_pct),
        ],
    )
}

/// The extended tier: the paper's schemes on ten additional modelled
/// benchmarks (the RF still trains only on the figure suite).
pub fn extended_tier(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let mut table = Table::new(vec![
        "benchmark",
        "category",
        "PPK savings (%)",
        "MPC savings (%)",
        "PPK speedup",
        "MPC speedup",
    ]);
    let mut ppk_cs = Vec::new();
    let mut mpc_cs = Vec::new();
    for w in extended_suite() {
        eprintln!("  extended suite: {} ...", w.name());
        let ppk = exec.evaluate(env.ctx(), &w, Scheme::PpkRf);
        let mpc = exec.evaluate(env.ctx(), &w, mpc_headline());
        let pc = Comparison::between(&ppk.baseline, &ppk.measured);
        let mc = Comparison::between(&mpc.baseline, &mpc.measured);
        table.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            fmt(pc.energy_savings_pct, 1),
            fmt(mc.energy_savings_pct, 1),
            fmt(pc.speedup, 3),
            fmt(mc.speedup, 3),
        ]);
        ppk_cs.push(pc);
        mpc_cs.push(mc);
    }
    let pa = summarize(&ppk_cs);
    let ma = summarize(&mpc_cs);
    table.row(vec![
        "AVERAGE".into(),
        String::new(),
        fmt(pa.energy_savings_pct, 1),
        fmt(ma.energy_savings_pct, 1),
        fmt(pa.speedup, 3),
        fmt(ma.speedup, 3),
    ]);
    let out = format!(
        "Extended tier: 10 additional benchmarks (model trained on the figure suite only)\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("ppk_savings_pct", pa.energy_savings_pct),
            metric("mpc_savings_pct", ma.energy_savings_pct),
            metric("mpc_speedup", ma.speedup),
        ],
    )
}

/// Generalization: the RF trains only on the 15-benchmark suite; MPC
/// then governs generated applications with unseen kernels.
pub fn generalization(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let count = if env.is_fast() { 8 } else { 25 };
    let population = generate_population(&GeneratorParams::default(), 0xBEEF, count);

    let mut table = Table::new(vec![
        "generated app",
        "category",
        "N",
        "MPC energy savings (%)",
        "MPC speedup",
        "PPK speedup",
    ]);
    let mut mpc_cs: Vec<Comparison> = Vec::new();
    let mut ppk_cs: Vec<Comparison> = Vec::new();
    for w in &population {
        eprintln!("  generalization on {} ...", w.name());
        let mpc = exec.evaluate(env.ctx(), w, mpc_headline());
        let ppk = exec.evaluate(env.ctx(), w, Scheme::PpkRf);
        let mc = Comparison::between(&mpc.baseline, &mpc.measured);
        let pc = Comparison::between(&ppk.baseline, &ppk.measured);
        table.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            w.len().to_string(),
            fmt(mc.energy_savings_pct, 1),
            fmt(mc.speedup, 3),
            fmt(pc.speedup, 3),
        ]);
        mpc_cs.push(mc);
        ppk_cs.push(pc);
    }
    let ma = summarize(&mpc_cs);
    let pa = summarize(&ppk_cs);
    table.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        fmt(ma.energy_savings_pct, 1),
        fmt(ma.speedup, 3),
        fmt(pa.speedup, 3),
    ]);

    let mut out = format!(
        "Generalization: MPC on {count} generated applications with unseen kernels\n{}",
        table.render()
    );
    writeln!(
        out,
        "out-of-distribution MPC: {:.1}% savings, speedup {:.3} (suite numbers: ~29% / ~1.0);",
        ma.energy_savings_pct, ma.speedup
    )
    .unwrap();
    writeln!(
        out,
        "PPK speedup {:.3} — the future-aware gap persists on unseen applications.",
        pa.speedup
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("mpc_savings_pct", ma.energy_savings_pct),
            metric("mpc_speedup", ma.speedup),
            metric("ppk_speedup", pa.speedup),
        ],
    )
}

/// Section VI-E extension: hiding MPC overheads inside host CPU phases
/// (phases = 10% of each kernel's baseline time).
pub fn overhead_hiding(env: &XpEnv) -> ExperimentOutput {
    let exec = env.exec();
    let scheme = mpc_headline();

    let mut table = Table::new(vec![
        "benchmark",
        "worst-case overhead (ms)",
        "with CPU phases (ms)",
        "hidden (%)",
    ]);
    let (mut worst_sum, mut hidden_sum) = (0.0f64, 0.0f64);
    for w in suite() {
        eprintln!("  {} ...", w.name());
        let worst = exec.evaluate(env.ctx(), &w, scheme);
        let phases: Vec<f64> = worst
            .baseline
            .per_kernel
            .iter()
            .map(|k| k.time_s * 0.10)
            .collect();
        let with_phases_workload = w.clone().with_cpu_phases(phases);
        let hidden = exec.evaluate(env.ctx(), &with_phases_workload, scheme);

        let w_ms = worst.measured.overhead_time_s * 1e3;
        let h_ms = hidden.measured.overhead_time_s * 1e3;
        worst_sum += w_ms;
        hidden_sum += h_ms;
        let pct = if w_ms > 0.0 {
            (1.0 - h_ms / w_ms) * 100.0
        } else {
            0.0
        };
        table.row(vec![
            w.name().to_string(),
            fmt(w_ms, 3),
            fmt(h_ms, 3),
            fmt(pct, 1),
        ]);
    }
    let hidden_pct = (1.0 - hidden_sum / worst_sum.max(1e-12)) * 100.0;
    let mut out = format!(
        "Overhead hiding in CPU phases (phases = 10% of baseline kernel time)\n{}",
        table.render()
    );
    writeln!(
        out,
        "suite total: {worst_sum:.2} ms worst-case -> {hidden_sum:.2} ms with phases ({hidden_pct:.0}% hidden)"
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("hidden_pct", hidden_pct),
            metric("worst_total_ms", worst_sum),
        ],
    )
}

/// Extension: sensitivity to DVFS transition latency (0×, 1×, 10× the
/// nominal transition model). Builds its own contexts — the transition
/// scale changes the whole campaign.
pub fn transition_cost(env: &XpEnv) -> ExperimentOutput {
    let scales = [0.0, 1.0, 10.0];
    let mut headers = vec!["benchmark".to_string()];
    for s in scales {
        headers.push(format!("MPC sav% @{s}x"));
        headers.push(format!("MPC spd @{s}x"));
    }
    headers.push("transitions (ms) @1x".into());
    let mut table = Table::new(headers);

    let exec = env.exec();
    let mut per_scale: Vec<Vec<(String, f64, f64, f64)>> = Vec::new();
    for &scale in &scales {
        eprintln!("building context at transition scale {scale}x ...");
        let opts = EvalOptions {
            sim_params: SimParams {
                dvfs_transition_scale: scale,
                ..env.options().sim_params
            },
            ..env.options()
        };
        let ctx = EvalContext::build(opts);
        let rows: Vec<(String, f64, f64, f64)> = suite()
            .iter()
            .map(|w| {
                eprintln!("  {} @{}x ...", w.name(), scale);
                let out = exec.evaluate(&ctx, w, mpc_headline());
                let c = Comparison::between(&out.baseline, &out.measured);
                (
                    w.name().to_string(),
                    c.energy_savings_pct,
                    c.speedup,
                    out.measured.transition_time_s * 1e3,
                )
            })
            .collect();
        per_scale.push(rows);
    }

    let n = per_scale[0].len();
    for i in 0..n {
        let mut row = vec![per_scale[0][i].0.clone()];
        for rows in &per_scale {
            row.push(fmt(rows[i].1, 1));
            row.push(fmt(rows[i].2, 3));
        }
        row.push(fmt(per_scale[1][i].3, 3));
        table.row(row);
    }
    let mut out = format!(
        "DVFS transition-cost sensitivity (MPC, adaptive horizon)\n{}",
        table.render()
    );
    let mut avgs = Vec::new();
    for (rows, s) in per_scale.iter().zip(scales) {
        let sav: f64 = rows.iter().map(|r| r.1).sum::<f64>() / n as f64;
        let spd: f64 = rows.iter().map(|r| r.2).sum::<f64>() / n as f64;
        writeln!(
            out,
            "scale {s:>4}x: avg savings {sav:.1}%, avg speedup {spd:.3}"
        )
        .unwrap();
        avgs.push(sav);
    }
    ExperimentOutput::new(
        out,
        vec![
            metric("savings_at_0x", avgs[0]),
            metric("savings_at_1x", avgs[1]),
            metric("savings_at_10x", avgs[2]),
            metric("savings_drop_0_to_10_pts", avgs[0] - avgs[2]),
        ],
    )
}

/// Robustness of the headline result to measurement-noise realizations:
/// fresh campaign + training + runtime noise per seed.
pub fn stability(env: &XpEnv) -> ExperimentOutput {
    let seeds: &[u64] = if env.is_fast() {
        &[0x9e3779b97f4a7c15, 0x1234_5678, 0xDEAD_BEEF]
    } else {
        &[
            0x9e3779b97f4a7c15,
            0x1234_5678,
            0xDEAD_BEEF,
            0x0F0F_F0F0,
            0xABCD_EF01,
        ]
    };
    let exec = env.exec();
    let mut table = Table::new(vec![
        "noise seed",
        "RF time MAPE (%)",
        "MPC energy savings (%)",
        "MPC speedup",
        "PPK speedup",
    ]);
    let mut savings = Vec::new();
    let mut speedups = Vec::new();
    for &seed in seeds {
        eprintln!("seed {seed:#x}: building context ...");
        let options = EvalOptions {
            sim_params: SimParams {
                noise_seed: seed,
                ..env.options().sim_params
            },
            ..env.options()
        };
        let ctx = EvalContext::build(options);
        let mpc = evaluate_suite_with(&exec, &ctx, mpc_headline());
        let ppk = evaluate_suite_with(&exec, &ctx, Scheme::PpkRf);
        let ma = suite_average(&mpc);
        let pa = suite_average(&ppk);
        savings.push(ma.energy_savings_pct);
        speedups.push(ma.speedup);
        table.row(vec![
            format!("{seed:#x}"),
            fmt(ctx.rf_report.time_mape * 100.0, 1),
            fmt(ma.energy_savings_pct, 1),
            fmt(ma.speedup, 3),
            fmt(pa.speedup, 3),
        ]);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let mut out = format!(
        "Headline stability across measurement-noise seeds\n{}",
        table.render()
    );
    writeln!(
        out,
        "MPC energy savings {:.1} ± {:.2} pts; speedup {:.3} ± {:.3}",
        mean(&savings),
        spread(&savings),
        mean(&speedups),
        spread(&speedups)
    )
    .unwrap();
    ExperimentOutput::new(
        out,
        vec![
            metric("mean_savings_pct", mean(&savings)),
            metric("spread_savings_pts", spread(&savings)),
            metric("mean_speedup", mean(&speedups)),
        ],
    )
}

/// Exports the measurement campaign as a replayable JSON table (with
/// `schema_version` stamped) and a flat CSV. Fast mode exports the
/// strided training space instead of the full 336-point campaign.
pub fn export_campaign(env: &XpEnv) -> ExperimentOutput {
    let options = env.options();
    let sim = ApuSimulator::new(options.sim_params.clone());
    let kernels = context::training_kernels();
    let space = if env.is_fast() {
        context::training_space(options.train_config_stride)
    } else {
        ConfigSpace::paper_campaign()
    };
    eprintln!(
        "recording campaign: {} kernels x {} configurations ...",
        kernels.len(),
        space.len()
    );
    let replay = ReplayPlatform::record(&sim, &kernels, &space);
    // The stamp is an extra root field; `ReplayPlatform::from_json`
    // ignores unknown fields, so the export stays replayable.
    emit_artifact("results/campaign.json", &replay);

    let mut csv = String::from("# schema_version: 1\n");
    csv.push_str("kernel,cpu,nb,gpu,cu,time_s,gpu_power_w,chip_power_w,energy_j,ginstructions\n");
    let mut rows = 0u64;
    for kernel in &kernels {
        for cfg in &space {
            let out = sim.evaluate(kernel, cfg);
            rows += 1;
            csv.push_str(&format!(
                "{},{},{},{},{},{:.9},{:.4},{:.4},{:.6},{:.6}\n",
                kernel.name(),
                cfg.cpu,
                cfg.nb,
                cfg.gpu,
                cfg.cu.get(),
                out.time_s,
                out.power.gpu_domain_w(),
                out.power.total_w(),
                out.energy.total_j(),
                out.ginstructions
            ));
        }
    }
    std::fs::write("results/campaign.csv", &csv).expect("write campaign.csv");

    let out = format!(
        "exported {} measurements: results/campaign.json ({} KiB), results/campaign.csv ({} KiB)\n",
        replay.len(),
        std::fs::metadata("results/campaign.json")
            .map(|m| m.len() / 1024)
            .unwrap_or(0),
        std::fs::metadata("results/campaign.csv")
            .map(|m| m.len() / 1024)
            .unwrap_or(0),
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("measurements", replay.len() as f64),
            metric("csv_rows", rows as f64),
        ],
    )
}
