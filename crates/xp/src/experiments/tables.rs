//! Paper tables I, II, and IV as registry run functions (static — no
//! evaluation context needed).

use crate::experiment::{metric, ExperimentOutput, XpEnv};
use gpm_harness::report::{fmt, Table};
use gpm_hw::{CpuPState, GpuDpm, NbState};
use gpm_workloads::{suite, workload_by_name};
use std::fmt::Write;

/// Table I: software-visible CPU, NB, and GPU DVFS states of the
/// AMD A10-7850K.
pub fn table1(_env: &XpEnv) -> ExperimentOutput {
    let mut cpu = Table::new(vec!["CPU P-state", "Voltage (V)", "Freq (GHz)"]);
    for s in CpuPState::ALL {
        cpu.row(vec![
            s.to_string(),
            fmt(s.voltage(), 4),
            fmt(s.freq_ghz(), 1),
        ]);
    }
    let mut nb = Table::new(vec!["NB P-state", "Freq (GHz)", "Memory Freq (MHz)"]);
    for s in NbState::ALL {
        nb.row(vec![
            s.to_string(),
            fmt(s.freq_ghz(), 1),
            fmt(s.mem_freq_mhz(), 0),
        ]);
    }
    let mut gpu = Table::new(vec!["GPU P-state", "Voltage (V)", "Freq (MHz)"]);
    for s in GpuDpm::ALL {
        gpu.row(vec![
            s.to_string(),
            fmt(s.voltage(), 4),
            fmt(s.freq_mhz(), 0),
        ]);
    }
    let out = format!(
        "Table I: DVFS states on the AMD A10-7850K\n\n{}\n{}\n{}",
        cpu.render(),
        nb.render(),
        gpu.render()
    );
    let configs = CpuPState::ALL.len() * NbState::ALL.len() * GpuDpm::ALL.len();
    ExperimentOutput::new(
        out,
        vec![
            metric("cpu_states", CpuPState::ALL.len() as f64),
            metric("nb_states", NbState::ALL.len() as f64),
            metric("gpu_states", GpuDpm::ALL.len() as f64),
            metric("state_products", configs as f64),
        ],
    )
}

/// Table II: execution patterns of the three highlighted irregular
/// benchmarks.
pub fn table2(_env: &XpEnv) -> ExperimentOutput {
    let mut table = Table::new(vec!["Benchmark", "Kernel Execution Pattern", "Invocations"]);
    let mut metrics = Vec::new();
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).expect("suite benchmark");
        table.row(vec![
            w.name().to_string(),
            w.pattern().to_string(),
            w.len().to_string(),
        ]);
        metrics.push(metric(
            format!("{}_invocations", name.to_lowercase()),
            w.len() as f64,
        ));
    }
    let mut out = format!(
        "Table II: execution pattern of three irregular benchmarks\n\n{}",
        table.render()
    );
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).unwrap();
        let seq: Vec<&str> = w.kernels().iter().map(|k| k.name()).collect();
        writeln!(out, "{}: {}", name, seq.join(" ")).unwrap();
    }
    ExperimentOutput::new(out, metrics)
}

/// Table IV: the benchmark inventory — name, source suite, category,
/// and execution pattern.
pub fn table4(_env: &XpEnv) -> ExperimentOutput {
    let mut table = Table::new(vec![
        "Category",
        "Benchmark",
        "Benchmark Suite",
        "Pattern",
        "N",
        "Distinct",
    ]);
    let workloads = suite();
    let mut irregular = 0usize;
    for w in &workloads {
        if w.category()
            .to_string()
            .to_lowercase()
            .contains("irregular")
        {
            irregular += 1;
        }
        table.row(vec![
            w.category().to_string(),
            w.name().to_string(),
            w.source_suite().to_string(),
            w.pattern().to_string(),
            w.len().to_string(),
            w.distinct_kernels().to_string(),
        ]);
    }
    let out = format!(
        "Table IV: benchmarks with their execution pattern\n\n{}",
        table.render()
    );
    ExperimentOutput::new(
        out,
        vec![
            metric("benchmark_count", workloads.len() as f64),
            metric("irregular_count", irregular as f64),
            metric(
                "total_invocations",
                workloads.iter().map(|w| w.len()).sum::<usize>() as f64,
            ),
        ],
    )
}
