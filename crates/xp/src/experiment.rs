//! The experiment abstraction: a registered, machine-checkable unit of
//! the paper reproduction.
//!
//! Every figure, table, and ablation is an [`Experiment`]: a name, the
//! paper exhibit it reproduces, a run function producing a rendered
//! report plus named scalar [`Metric`]s, and a set of [`Expectation`]s —
//! recorded paper values and implementation golden values with tolerance
//! bands. The `reproduce` binary schedules experiments over a shared
//! [`EvalContext`] and fails when any metric drifts outside its band.

use gpm_harness::env::ExecEnv;
use gpm_harness::{EvalContext, EvalOptions};
use gpm_telemetry::{Telemetry, TelemetrySnapshot};
use gpm_trace::{AggregateSink, TraceSink, TraceSummary};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::Arc;

/// Evaluation depth: `Fast` uses the reduced measurement campaign and
/// shrunk sweeps (CI smoke), `Full` the paper-fidelity protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Reduced campaign + shrunk sweeps; seconds per experiment.
    Fast,
    /// Paper-fidelity protocol; the numbers recorded in `EXPERIMENTS.md`.
    Full,
}

impl Mode {
    /// Stable lowercase name used in artifacts and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Fast => "fast",
            Mode::Full => "full",
        }
    }

    /// The [`EvalOptions`] matching this mode.
    pub fn options(self) -> EvalOptions {
        match self {
            Mode::Fast => EvalOptions::fast(),
            Mode::Full => EvalOptions::default(),
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One named scalar an experiment reports — the machine-checkable
/// counterpart of a table cell or figure bar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Stable metric name, e.g. `mpc_energy_savings_pct`.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Shorthand [`Metric`] constructor.
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
    }
}

/// Where an expected value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// The published number (generous tolerance: the substrate is an
    /// analytical simulator, not the authors' A10-7850K).
    Paper,
    /// A recorded value of this implementation (tight tolerance: the
    /// pipeline is deterministic, so drift means a behaviour change).
    Golden,
}

impl Source {
    /// Stable lowercase name used in artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Paper => "paper",
            Source::Golden => "golden",
        }
    }
}

/// A tolerance band on one metric: the regression gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Expectation {
    /// Metric this expectation constrains.
    pub metric: &'static str,
    /// Expected value.
    pub expected: f64,
    /// Absolute tolerance: the gate fails when
    /// `|actual - expected| > tol`.
    pub tol: f64,
    /// Paper or golden provenance.
    pub source: Source,
    /// Mode the expectation applies to; `None` = both modes.
    pub mode: Option<Mode>,
}

impl Expectation {
    /// Whether this expectation is checked under `mode`.
    pub fn applies(&self, mode: Mode) -> bool {
        self.mode.is_none() || self.mode == Some(mode)
    }

    /// A paper-value expectation checked only in full mode (fast mode
    /// shrinks campaigns and sweeps, so paper bands only bind at paper
    /// fidelity).
    pub fn paper(metric: &'static str, expected: f64, tol: f64) -> Expectation {
        Expectation {
            metric,
            expected,
            tol,
            source: Source::Paper,
            mode: Some(Mode::Full),
        }
    }
}

/// The outcome of checking one [`Expectation`] against a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateResult {
    /// Metric checked.
    pub metric: String,
    /// Provenance of the expected value.
    pub source: Source,
    /// Expected value.
    pub expected: f64,
    /// Absolute tolerance band.
    pub tol: f64,
    /// Measured value (`None` when the experiment did not report the
    /// metric — itself a failure).
    pub actual: Option<f64>,
    /// Whether the metric landed inside the band.
    pub pass: bool,
}

/// Checks `expectations` applicable under `mode` against `metrics`.
pub fn check_gates(
    expectations: &[Expectation],
    metrics: &[Metric],
    mode: Mode,
) -> Vec<GateResult> {
    expectations
        .iter()
        .filter(|e| e.applies(mode))
        .map(|e| {
            let actual = metrics.iter().find(|m| m.name == e.metric).map(|m| m.value);
            let pass = actual.is_some_and(|a| (a - e.expected).abs() <= e.tol && a.is_finite());
            GateResult {
                metric: e.metric.to_string(),
                source: e.source,
                expected: e.expected,
                tol: e.tol,
                actual,
                pass,
            }
        })
        .collect()
}

/// What one experiment run produces: the human-readable report (the old
/// binary's stdout), the gated metrics, and structured detail rows for
/// the JSON artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Rendered report text.
    pub text: String,
    /// Named scalars the registry's expectations gate on.
    pub metrics: Vec<Metric>,
    /// Structured per-row detail included in the artifact (a JSON
    /// object; `Value::Null` when the text report says it all).
    pub details: Value,
}

impl ExperimentOutput {
    /// An output with text and metrics but no structured details.
    pub fn new(text: String, metrics: Vec<Metric>) -> ExperimentOutput {
        ExperimentOutput {
            text,
            metrics,
            details: Value::Null,
        }
    }

    /// Attaches structured details.
    #[must_use]
    pub fn with_details(mut self, details: Value) -> ExperimentOutput {
        self.details = details;
        self
    }
}

/// The per-run environment handed to an experiment: the shared
/// [`EvalContext`] (when the experiment declares it needs one), the
/// evaluation [`Mode`], and a per-experiment trace aggregate every
/// scheme evaluation feeds.
pub struct XpEnv<'a> {
    mode: Mode,
    ctx: Option<&'a EvalContext>,
    sink: Arc<AggregateSink>,
    telemetry: Telemetry,
}

impl<'a> XpEnv<'a> {
    /// Builds an environment for one experiment run.
    pub fn new(mode: Mode, ctx: Option<&'a EvalContext>) -> XpEnv<'a> {
        XpEnv {
            mode,
            ctx,
            sink: Arc::new(AggregateSink::new()),
            telemetry: Telemetry::new(),
        }
    }

    /// The evaluation mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Whether the reduced protocol was requested.
    pub fn is_fast(&self) -> bool {
        self.mode == Mode::Fast
    }

    /// [`EvalOptions`] matching the mode — for experiments that build
    /// their own specialized contexts (noise-seed sweeps, transition-cost
    /// sensitivity).
    pub fn options(&self) -> EvalOptions {
        self.mode.options()
    }

    /// The shared evaluation context.
    ///
    /// # Panics
    ///
    /// Panics when the experiment was registered with
    /// `needs_ctx: false` — static-table experiments have no context.
    pub fn ctx(&self) -> &'a EvalContext {
        self.ctx
            .expect("experiment was registered without a shared context")
    }

    /// An [`ExecEnv`] wired to this experiment's trace aggregate and
    /// telemetry registry. Neither changes decisions (property- and
    /// byte-identity-tested), so routing every evaluation through them
    /// is free observability.
    pub fn exec(&self) -> ExecEnv {
        ExecEnv::new()
            .with_trace(self.sink.clone() as Arc<dyn TraceSink>)
            .with_telemetry(self.telemetry.clone())
    }

    /// The per-experiment trace summary accumulated so far.
    pub fn trace_summary(&self) -> TraceSummary {
        self.sink.summary()
    }

    /// The per-experiment telemetry registry (metrics + span profiles
    /// for every evaluation routed through [`XpEnv::exec`]; the runner
    /// also scopes the whole run under an `xp.experiment` span).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot of the per-experiment registry accumulated so far.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Stable registry name (also the artifact stem), e.g. `fig8`.
    pub name: &'static str,
    /// Paper exhibit reproduced, e.g. `Figure 8` — or `extension` for
    /// studies beyond the paper.
    pub paper_ref: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Whether the runner must provide the shared [`EvalContext`].
    pub needs_ctx: bool,
    /// The run function.
    pub run: fn(&XpEnv) -> ExperimentOutput,
    /// Tolerance bands gating this experiment.
    pub expectations: Vec<Expectation>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("paper_ref", &self.paper_ref)
            .field("needs_ctx", &self.needs_ctx)
            .field("expectations", &self.expectations.len())
            .finish()
    }
}

/// FNV-1a hash of the strings that define a run's identity — used to
/// match checkpointed artifacts on resume.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] != ["a","bc"].
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_check_band_membership_and_missing_metrics() {
        let exps = vec![
            Expectation {
                metric: "a",
                expected: 10.0,
                tol: 1.0,
                source: Source::Golden,
                mode: None,
            },
            Expectation {
                metric: "missing",
                expected: 1.0,
                tol: 1.0,
                source: Source::Golden,
                mode: None,
            },
            Expectation::paper("a", 50.0, 1.0),
        ];
        let metrics = vec![metric("a", 10.5)];
        let fast = check_gates(&exps, &metrics, Mode::Fast);
        // The paper expectation only binds in full mode.
        assert_eq!(fast.len(), 2);
        assert!(fast[0].pass);
        assert!(!fast[1].pass && fast[1].actual.is_none());
        let full = check_gates(&exps, &metrics, Mode::Full);
        assert_eq!(full.len(), 3);
        assert!(!full[2].pass, "paper band at 50 must fail for actual 10.5");
    }

    #[test]
    fn non_finite_actuals_fail_even_inside_band() {
        let exps = vec![Expectation {
            metric: "a",
            expected: f64::NAN,
            tol: f64::INFINITY,
            source: Source::Golden,
            mode: None,
        }];
        let gates = check_gates(&exps, &[metric("a", f64::NAN)], Mode::Fast);
        assert!(!gates[0].pass);
    }

    #[test]
    fn fingerprint_separates_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn mode_options_match_depth() {
        assert_eq!(
            Mode::Fast.options().train_config_stride,
            EvalOptions::fast().train_config_stride
        );
        assert_eq!(
            Mode::Full.options().train_config_stride,
            EvalOptions::default().train_config_stride
        );
    }
}
