//! The experiment registry: every figure, table, ablation, and
//! extension study, with its paper expectations and recorded golden
//! values.

use crate::experiment::{Expectation, Experiment, Mode, Source, XpEnv};
use crate::experiments::{ablations, extensions, figures, fleet, robustness, tables, telemetry};
use crate::golden::golden_for;

/// A golden expectation that binds in both modes with tolerance 0 —
/// used for exact structural facts (state counts, invocation counts).
fn exact(metric: &'static str, expected: f64) -> Expectation {
    Expectation {
        metric,
        expected,
        tol: 0.0,
        source: Source::Paper,
        mode: None,
    }
}

fn entry(
    name: &'static str,
    paper_ref: &'static str,
    title: &'static str,
    needs_ctx: bool,
    run: fn(&XpEnv) -> crate::experiment::ExperimentOutput,
    paper: Vec<Expectation>,
) -> Experiment {
    let mut expectations = paper;
    for mode in [Mode::Fast, Mode::Full] {
        expectations.extend(golden_for(name, mode));
    }
    Experiment {
        name,
        paper_ref,
        title,
        needs_ctx,
        run,
        expectations,
    }
}

/// Builds the full registry, in stable order. Paper tolerance bands are
/// wide — the substrate is an analytical simulator, not the authors'
/// A10-7850K — while golden bands (merged from [`crate::golden`]) are
/// tight regression gates on this implementation.
pub fn registry() -> Vec<Experiment> {
    vec![
        entry(
            "fig2",
            "Figure 2",
            "Scaling classes of four kernel archetypes across NB states x CU counts",
            false,
            figures::fig2,
            vec![],
        ),
        entry(
            "fig3",
            "Figure 3",
            "Per-invocation normalized kernel throughput (Spmv, kmeans, hybridsort)",
            false,
            figures::fig3,
            vec![],
        ),
        entry(
            "fig4",
            "Figure 4",
            "Limit study: PPK vs Theoretically Optimal with perfect knowledge",
            true,
            figures::fig4,
            vec![],
        ),
        entry(
            "fig8",
            "Figure 8",
            "Headline: PPK and MPC vs AMD Turbo Core, RF prediction, overheads charged",
            true,
            figures::fig8,
            vec![
                Expectation::paper("mpc_energy_savings_pct", 24.8, 8.0),
                Expectation::paper("mpc_perf_loss_pct", 1.8, 4.0),
            ],
        ),
        entry(
            "fig9",
            "Figure 9",
            "MPC relative to PPK (savings and speedup)",
            true,
            figures::fig9,
            vec![Expectation::paper("rel_energy_savings_pct", 6.6, 8.0)],
        ),
        entry(
            "fig10",
            "Figure 10",
            "GPU-domain energy savings and CPU/GPU savings attribution",
            true,
            figures::fig10,
            vec![Expectation::paper("cpu_share_pct", 75.0, 20.0)],
        ),
        entry(
            "fig11",
            "Figure 11",
            "Amortization of the initial profiling run under re-execution",
            true,
            figures::fig11,
            vec![Expectation::paper("steady_minus_at_10", 0.0, 5.0)],
        ),
        entry(
            "fig12",
            "Figure 12",
            "MPC (perfect prediction, no overhead) vs the theoretical limit",
            true,
            figures::fig12,
            vec![
                Expectation::paper("energy_capture_pct", 92.0, 15.0),
                Expectation::paper("perf_capture_pct", 93.0, 15.0),
            ],
        ),
        entry(
            "fig13",
            "Figure 13",
            "Sensitivity to prediction accuracy (RF vs half-normal error models)",
            true,
            figures::fig13,
            vec![Expectation::paper("err0_minus_rf_pts", 2.5, 4.5)],
        ),
        entry(
            "fig14",
            "Figure 14",
            "MPC's own energy and performance overheads (worst case)",
            true,
            figures::fig14,
            vec![
                Expectation::paper("avg_energy_overhead_pct", 0.15, 0.5),
                Expectation::paper("avg_perf_overhead_pct", 0.3, 1.0),
            ],
        ),
        entry(
            "fig15",
            "Figure 15",
            "Average adaptive-horizon length as a fraction of kernel count",
            true,
            figures::fig15,
            vec![],
        ),
        entry(
            "table1",
            "Table I",
            "DVFS states of the AMD A10-7850K",
            false,
            tables::table1,
            vec![
                exact("cpu_states", 7.0),
                exact("nb_states", 4.0),
                exact("gpu_states", 5.0),
            ],
        ),
        entry(
            "table2",
            "Table II",
            "Execution patterns of the three highlighted irregular benchmarks",
            false,
            tables::table2,
            vec![],
        ),
        entry(
            "table4",
            "Table IV",
            "Benchmark inventory with execution patterns",
            false,
            tables::table4,
            vec![exact("benchmark_count", 15.0)],
        ),
        entry(
            "model_accuracy",
            "Section VI-D",
            "Random-Forest held-out accuracy, leave-one-kernel-out, feature importance",
            false,
            ablations::model_accuracy,
            vec![
                Expectation::paper("time_mape_pct", 25.0, 20.0),
                Expectation::paper("power_mape_pct", 12.0, 10.0),
            ],
        ),
        entry(
            "horizon_ablation",
            "Section VI-E",
            "Adaptive vs full horizon, with and without overheads",
            true,
            ablations::horizon_ablation,
            vec![
                Expectation::paper("ideal_minus_adaptive_pts", 2.6, 4.0),
                Expectation::paper("short_full_perf_loss_pct", 12.8, 11.0),
            ],
        ),
        entry(
            "search_cost",
            "Section IV-A1a",
            "Search cost: hill climb vs exhaustive, MPC vs exhaustive window search",
            true,
            ablations::search_cost,
            // The paper reports ~19x; our hill climb converges in fewer
            // probes than theirs, so the reduction lands higher. Gate
            // only that a large reduction exists, not its exact size.
            vec![Expectation::paper("perkernel_reduction", 25.0, 20.0)],
        ),
        entry(
            "search_order_ablation",
            "Section IV-A1a",
            "Profiling-derived search order vs plain execution order",
            false,
            ablations::search_order_ablation,
            vec![],
        ),
        entry(
            "window_solver_ablation",
            "Section IV-A1a",
            "Greedy window heuristic vs exact Eq. 3 DP",
            false,
            ablations::window_solver_ablation,
            vec![],
        ),
        entry(
            "alpha_sweep",
            "extension",
            "Adaptive-horizon overhead budget sweep around the paper's alpha = 0.05",
            true,
            ablations::alpha_sweep,
            vec![],
        ),
        entry(
            "baselines",
            "extension",
            "All policies side by side: Equalizer, PPK, MPC, TO",
            true,
            extensions::baselines,
            vec![],
        ),
        entry(
            "extended_suite",
            "extension",
            "Ten additional benchmarks with the RF trained on the figure suite only",
            true,
            extensions::extended_tier,
            vec![],
        ),
        entry(
            "generalization",
            "extension",
            "MPC on generated applications with unseen kernels",
            true,
            extensions::generalization,
            vec![],
        ),
        entry(
            "overhead_hiding",
            "extension",
            "Hiding MPC overheads inside host CPU phases",
            true,
            extensions::overhead_hiding,
            vec![],
        ),
        entry(
            "transition_cost",
            "extension",
            "Sensitivity to DVFS transition latency (0x / 1x / 10x)",
            false,
            extensions::transition_cost,
            vec![],
        ),
        entry(
            "stability",
            "extension",
            "Headline stability across measurement-noise seeds",
            false,
            extensions::stability,
            vec![],
        ),
        entry(
            "export_campaign",
            "Section V",
            "Replayable measurement-campaign export (JSON + CSV)",
            false,
            extensions::export_campaign,
            vec![],
        ),
        entry(
            "robustness",
            "extension",
            "Fault-injection degradation curve with the graceful-degradation gate",
            false,
            robustness::robustness,
            vec![Expectation {
                metric: "gate_failures",
                expected: 0.0,
                tol: 0.0,
                source: Source::Paper,
                mode: None,
            }],
        ),
        entry(
            "fleet_scaling",
            "extension",
            "Sharded fleet service: worker-count determinism and scaling",
            true,
            fleet::fleet_scaling,
            vec![exact("deterministic", 1.0)],
        ),
        entry(
            "telemetry_overhead",
            "extension",
            "Telemetry hot-path overhead, decision byte-identity, Prometheus validity",
            true,
            telemetry::telemetry_overhead,
            vec![
                exact("overhead_ok", 1.0),
                exact("byte_identical", 1.0),
                exact("prometheus_valid", 1.0),
                exact("spans_match_dispatches", 1.0),
            ],
        ),
    ]
}

/// Stable registry order of experiment names.
pub fn registry_names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name).collect()
}

/// Looks up one experiment by exact name.
pub fn find(name: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let names = registry_names();
        assert!(names.len() >= 27, "expected full registry, got {names:?}");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry names");
    }

    #[test]
    fn expectations_reference_plausible_metrics() {
        for e in registry() {
            for exp in &e.expectations {
                assert!(!exp.metric.is_empty());
                assert!(exp.tol >= 0.0, "{}: negative tolerance", e.name);
                assert!(exp.expected.is_finite(), "{}: non-finite expected", e.name);
            }
        }
    }

    #[test]
    fn static_experiments_run_and_pass_their_gates() {
        use crate::experiment::{check_gates, Mode, XpEnv};
        for name in ["table1", "table2", "table4"] {
            let e = find(name).unwrap();
            assert!(!e.needs_ctx);
            let env = XpEnv::new(Mode::Fast, None);
            let out = (e.run)(&env);
            let gates = check_gates(&e.expectations, &out.metrics, Mode::Fast);
            for g in &gates {
                assert!(g.pass, "{name}: gate {} failed: {g:?}", g.metric);
            }
        }
    }
}
