//! Property tests of the hardware model's algebra.

use gpm_hw::{ConfigSpace, CpuPState, CuCount, GpuDpm, HwConfig, Knob, KnobDirection, NbState};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = HwConfig> {
    (0usize..7, 0usize..4, 0usize..5, 0usize..4).prop_map(|(c, n, g, u)| {
        HwConfig::new(
            CpuPState::from_index(c).unwrap(),
            NbState::from_index(n).unwrap(),
            GpuDpm::from_index(g).unwrap(),
            CuCount::from_index(u).unwrap(),
        )
    })
}

proptest! {
    #[test]
    fn dense_index_roundtrips(cfg in any_config()) {
        prop_assert_eq!(HwConfig::from_dense_index(cfg.dense_index()), Some(cfg));
    }

    #[test]
    fn step_then_reverse_is_identity(cfg in any_config(), knob_idx in 0usize..4) {
        let knob = Knob::ALL[knob_idx];
        for dir in [KnobDirection::Up, KnobDirection::Down] {
            if let Some(stepped) = knob.step(cfg, dir) {
                // A successful step can always be undone.
                let back = knob.step(stepped, dir.reverse());
                prop_assert_eq!(back, Some(cfg));
            }
        }
    }

    #[test]
    fn stepping_stays_in_full_space(cfg in any_config(), knob_idx in 0usize..4) {
        let knob = Knob::ALL[knob_idx];
        let space = ConfigSpace::full();
        for dir in [KnobDirection::Up, KnobDirection::Down] {
            if let Some(stepped) = knob.step(cfg, dir) {
                prop_assert!(space.contains(stepped));
            }
        }
    }

    #[test]
    fn up_steps_increase_the_knobs_speed(cfg in any_config(), knob_idx in 0usize..4) {
        let knob = Knob::ALL[knob_idx];
        if let Some(up) = knob.step(cfg, KnobDirection::Up) {
            match knob {
                Knob::CpuPState => prop_assert!(up.cpu.freq_ghz() > cfg.cpu.freq_ghz()),
                Knob::NbState => prop_assert!(up.nb.freq_ghz() > cfg.nb.freq_ghz()),
                Knob::GpuDpm => prop_assert!(up.gpu.freq_mhz() > cfg.gpu.freq_mhz()),
                Knob::CuCount => prop_assert!(up.cu.get() > cfg.cu.get()),
            }
        }
    }

    #[test]
    fn rail_voltage_bounds(cfg in any_config()) {
        let v = cfg.rail_voltage();
        prop_assert!(v >= cfg.gpu.voltage());
        prop_assert!(v >= cfg.nb.rail_request());
        prop_assert!(v == cfg.gpu.voltage() || v == cfg.nb.rail_request());
    }

    #[test]
    fn rail_voltage_monotone_in_gpu_state(cfg in any_config()) {
        if let Some(faster) = cfg.gpu.faster() {
            let mut up = cfg;
            up.gpu = faster;
            prop_assert!(up.rail_voltage() >= cfg.rail_voltage());
        }
    }

    #[test]
    fn sweep_contains_current_setting(cfg in any_config(), knob_idx in 0usize..4) {
        let knob = Knob::ALL[knob_idx];
        let sweep = knob.sweep(cfg);
        prop_assert!(sweep.contains(&cfg));
        // All sweep entries differ only in the swept knob.
        for s in sweep {
            match knob {
                Knob::CpuPState => {
                    prop_assert_eq!((s.nb, s.gpu, s.cu), (cfg.nb, cfg.gpu, cfg.cu))
                }
                Knob::NbState => {
                    prop_assert_eq!((s.cpu, s.gpu, s.cu), (cfg.cpu, cfg.gpu, cfg.cu))
                }
                Knob::GpuDpm => prop_assert_eq!((s.cpu, s.nb, s.cu), (cfg.cpu, cfg.nb, cfg.cu)),
                Knob::CuCount => {
                    prop_assert_eq!((s.cpu, s.nb, s.gpu), (cfg.cpu, cfg.nb, cfg.gpu))
                }
            }
        }
    }

    #[test]
    fn campaign_is_subset_of_full(cfg in any_config()) {
        if ConfigSpace::paper_campaign().contains(cfg) {
            prop_assert!(ConfigSpace::full().contains(cfg));
        }
    }
}
