//! Hardware knobs and single-step moves used by the greedy hill-climbing
//! optimizer (Section IV-A1a of the paper).

use crate::config::{CuCount, HwConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four independently tunable hardware knobs.
///
/// The MPC optimizer ranks knobs by predicted energy sensitivity and then
/// hill-climbs each knob in turn, which reduces the number of energy
/// evaluations from `|cpu|×|nb|×|gpu|×|cu|` to `|cpu|+|nb|+|gpu|+|cu|`
/// — the 19× factor quoted in the paper.
///
/// # Examples
///
/// ```
/// use gpm_hw::{Knob, KnobDirection, HwConfig};
///
/// let cfg = HwConfig::FAIL_SAFE;
/// let slower = Knob::GpuDpm.step(cfg, KnobDirection::Down).unwrap();
/// assert!(slower.gpu < cfg.gpu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Knob {
    /// CPU P-state.
    CpuPState,
    /// Northbridge state.
    NbState,
    /// GPU DPM state.
    GpuDpm,
    /// Number of active compute units.
    CuCount,
}

impl Knob {
    /// All four knobs.
    pub const ALL: [Knob; 4] = [Knob::CpuPState, Knob::NbState, Knob::GpuDpm, Knob::CuCount];

    /// Number of settings this knob exposes (7, 4, 5, 4 respectively).
    pub fn cardinality(self) -> usize {
        match self {
            Knob::CpuPState => 7,
            Knob::NbState => 4,
            Knob::GpuDpm => 5,
            Knob::CuCount => 4,
        }
    }

    /// Moves `cfg` one step along this knob.
    ///
    /// Returns `None` when the knob is already at the end of its range in
    /// the requested direction.
    pub fn step(self, cfg: HwConfig, dir: KnobDirection) -> Option<HwConfig> {
        let mut out = cfg;
        match (self, dir) {
            (Knob::CpuPState, KnobDirection::Up) => out.cpu = cfg.cpu.faster()?,
            (Knob::CpuPState, KnobDirection::Down) => out.cpu = cfg.cpu.slower()?,
            (Knob::NbState, KnobDirection::Up) => out.nb = cfg.nb.faster()?,
            (Knob::NbState, KnobDirection::Down) => out.nb = cfg.nb.slower()?,
            (Knob::GpuDpm, KnobDirection::Up) => out.gpu = cfg.gpu.faster()?,
            (Knob::GpuDpm, KnobDirection::Down) => out.gpu = cfg.gpu.slower()?,
            (Knob::CuCount, KnobDirection::Up) => out.cu = cfg.cu.more()?,
            (Knob::CuCount, KnobDirection::Down) => out.cu = cfg.cu.fewer()?,
        }
        Some(out)
    }

    /// All settings of this knob applied to `cfg`, from slowest to fastest.
    ///
    /// Used by optimizers that sweep a single knob while holding the others
    /// fixed.
    pub fn sweep(self, cfg: HwConfig) -> Vec<HwConfig> {
        match self {
            Knob::CpuPState => crate::states::CpuPState::ALL
                .iter()
                .rev()
                .map(|&cpu| HwConfig { cpu, ..cfg })
                .collect(),
            Knob::NbState => crate::states::NbState::ALL
                .iter()
                .rev()
                .map(|&nb| HwConfig { nb, ..cfg })
                .collect(),
            Knob::GpuDpm => crate::states::GpuDpm::ALL
                .iter()
                .map(|&gpu| HwConfig { gpu, ..cfg })
                .collect(),
            Knob::CuCount => CuCount::ALL
                .iter()
                .map(|&cu| HwConfig { cu, ..cfg })
                .collect(),
        }
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Knob::CpuPState => "cpu",
            Knob::NbState => "nb",
            Knob::GpuDpm => "gpu",
            Knob::CuCount => "cu",
        };
        f.write_str(name)
    }
}

/// Direction of a single-step knob move.
///
/// `Up` always means *faster* (more performance, more power), regardless of
/// how the underlying state numbering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KnobDirection {
    /// Toward higher performance.
    Up,
    /// Toward lower power.
    Down,
}

impl KnobDirection {
    /// The opposite direction.
    pub fn reverse(self) -> KnobDirection {
        match self {
            KnobDirection::Up => KnobDirection::Down,
            KnobDirection::Down => KnobDirection::Up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::{CpuPState, GpuDpm, NbState};

    #[test]
    fn cardinalities_sum_to_twenty() {
        let sum: usize = Knob::ALL.iter().map(|k| k.cardinality()).sum();
        assert_eq!(sum, 20);
    }

    #[test]
    fn product_of_cardinalities() {
        let prod: usize = Knob::ALL.iter().map(|k| k.cardinality()).product();
        assert_eq!(prod, 560);
    }

    #[test]
    fn step_up_is_faster() {
        let cfg = HwConfig::FAIL_SAFE; // P7, NB2, DPM4, 8 CUs
        let up = Knob::CpuPState.step(cfg, KnobDirection::Up).unwrap();
        assert_eq!(up.cpu, CpuPState::P6);
        let up = Knob::NbState.step(cfg, KnobDirection::Up).unwrap();
        assert_eq!(up.nb, NbState::Nb1);
        assert_eq!(Knob::GpuDpm.step(cfg, KnobDirection::Up), None); // DPM4 is max
        assert_eq!(Knob::CuCount.step(cfg, KnobDirection::Up), None); // 8 CUs is max
    }

    #[test]
    fn step_down_is_slower() {
        let cfg = HwConfig::MAX_PERF;
        let down = Knob::GpuDpm.step(cfg, KnobDirection::Down).unwrap();
        assert_eq!(down.gpu, GpuDpm::Dpm3);
        let down = Knob::CuCount.step(cfg, KnobDirection::Down).unwrap();
        assert_eq!(down.cu.get(), 6);
    }

    #[test]
    fn step_only_touches_its_knob() {
        let cfg = HwConfig::MPC_HOST;
        let stepped = Knob::GpuDpm.step(cfg, KnobDirection::Up).unwrap();
        assert_eq!(stepped.cpu, cfg.cpu);
        assert_eq!(stepped.nb, cfg.nb);
        assert_eq!(stepped.cu, cfg.cu);
        assert_ne!(stepped.gpu, cfg.gpu);
    }

    #[test]
    fn sweep_covers_cardinality_and_is_slow_to_fast() {
        let cfg = HwConfig::FAIL_SAFE;
        for knob in Knob::ALL {
            let sweep = knob.sweep(cfg);
            assert_eq!(sweep.len(), knob.cardinality());
        }
        let cpu_sweep = Knob::CpuPState.sweep(cfg);
        assert_eq!(cpu_sweep.first().unwrap().cpu, CpuPState::P7);
        assert_eq!(cpu_sweep.last().unwrap().cpu, CpuPState::P1);
        let gpu_sweep = Knob::GpuDpm.sweep(cfg);
        assert_eq!(gpu_sweep.first().unwrap().gpu, GpuDpm::Dpm0);
        assert_eq!(gpu_sweep.last().unwrap().gpu, GpuDpm::Dpm4);
    }

    #[test]
    fn reverse_is_involution() {
        assert_eq!(KnobDirection::Up.reverse(), KnobDirection::Down);
        assert_eq!(KnobDirection::Up.reverse().reverse(), KnobDirection::Up);
    }
}
