//! Combined hardware configurations selectable by a power governor.

use crate::states::{CpuPState, GpuDpm, NbState};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Number of active GPU compute units: 2, 4, 6, or 8.
///
/// The paper varies the CU count "from 2 to 8 in steps of 2" (Section V).
/// The newtype makes an invalid count unrepresentable.
///
/// # Examples
///
/// ```
/// use gpm_hw::CuCount;
/// let cu = CuCount::new(6)?;
/// assert_eq!(cu.get(), 6);
/// assert!(CuCount::new(5).is_err());
/// # Ok::<(), gpm_hw::CuCountError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CuCount(CuInner);

#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
enum CuInner {
    #[default]
    Two,
    Four,
    Six,
    Eight,
}

/// Error returned by [`CuCount::new`] for counts outside {2, 4, 6, 8}.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuCountError(pub u32);

impl fmt::Display for CuCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid compute-unit count {} (expected 2, 4, 6, or 8)",
            self.0
        )
    }
}

impl Error for CuCountError {}

impl CuCount {
    /// All valid CU counts, ascending.
    pub const ALL: [CuCount; 4] = [
        CuCount(CuInner::Two),
        CuCount(CuInner::Four),
        CuCount(CuInner::Six),
        CuCount(CuInner::Eight),
    ];

    /// The A10-7850K's maximum of 8 active compute units.
    pub const MAX: CuCount = CuCount(CuInner::Eight);

    /// The minimum of 2 active compute units.
    pub const MIN: CuCount = CuCount(CuInner::Two);

    /// Creates a CU count.
    ///
    /// # Errors
    ///
    /// Returns [`CuCountError`] unless `n` is 2, 4, 6, or 8.
    pub fn new(n: u32) -> Result<CuCount, CuCountError> {
        match n {
            2 => Ok(CuCount(CuInner::Two)),
            4 => Ok(CuCount(CuInner::Four)),
            6 => Ok(CuCount(CuInner::Six)),
            8 => Ok(CuCount(CuInner::Eight)),
            other => Err(CuCountError(other)),
        }
    }

    /// The count as an integer in {2, 4, 6, 8}.
    pub fn get(self) -> u32 {
        match self.0 {
            CuInner::Two => 2,
            CuInner::Four => 4,
            CuInner::Six => 6,
            CuInner::Eight => 8,
        }
    }

    /// Zero-based index with 2 CUs at index 0.
    pub fn index(self) -> usize {
        match self.0 {
            CuInner::Two => 0,
            CuInner::Four => 1,
            CuInner::Six => 2,
            CuInner::Eight => 3,
        }
    }

    /// Inverse of [`CuCount::index`]. Returns `None` when `idx >= 4`.
    pub fn from_index(idx: usize) -> Option<CuCount> {
        CuCount::ALL.get(idx).copied()
    }

    /// Two more CUs, or `None` when already at 8.
    pub fn more(self) -> Option<CuCount> {
        CuCount::from_index(self.index() + 1)
    }

    /// Two fewer CUs, or `None` when already at 2.
    pub fn fewer(self) -> Option<CuCount> {
        self.index().checked_sub(1).and_then(CuCount::from_index)
    }
}

impl fmt::Display for CuCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CUs", self.get())
    }
}

impl TryFrom<u32> for CuCount {
    type Error = CuCountError;

    fn try_from(n: u32) -> Result<CuCount, CuCountError> {
        CuCount::new(n)
    }
}

impl From<CuCount> for u32 {
    fn from(cu: CuCount) -> u32 {
        cu.get()
    }
}

/// A complete software-visible hardware configuration: one element of the
/// Cartesian product `cpu × nb × gpu × cu` the paper optimizes over (Eq. 1).
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
///
/// let fail_safe = HwConfig::FAIL_SAFE;
/// assert_eq!(fail_safe.to_string(), "[P7, NB2, DPM4, 8 CUs]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwConfig {
    /// CPU P-state.
    pub cpu: CpuPState,
    /// Northbridge state.
    pub nb: NbState,
    /// GPU DPM state.
    pub gpu: GpuDpm,
    /// Number of active GPU compute units.
    pub cu: CuCount,
}

impl HwConfig {
    /// The paper's empirically determined fail-safe configuration
    /// `[P7, NB2, DPM4, 8 CUs]` (Section IV-A1a), used when the optimizer
    /// cannot meet the performance target or has no information yet.
    pub const FAIL_SAFE: HwConfig = HwConfig {
        cpu: CpuPState::P7,
        nb: NbState::Nb2,
        gpu: GpuDpm::Dpm4,
        cu: CuCount::MAX,
    };

    /// The configuration the MPC framework itself runs at on the host CPU:
    /// `[P5, NB0, DPM0, 2 CUs]` (Section V).
    pub const MPC_HOST: HwConfig = HwConfig {
        cpu: CpuPState::P5,
        nb: NbState::Nb0,
        gpu: GpuDpm::Dpm0,
        cu: CuCount::MIN,
    };

    /// The highest-performance configuration `[P1, NB0, DPM4, 8 CUs]`.
    pub const MAX_PERF: HwConfig = HwConfig {
        cpu: CpuPState::P1,
        nb: NbState::Nb0,
        gpu: GpuDpm::Dpm4,
        cu: CuCount::MAX,
    };

    /// Creates a configuration from its four knob settings.
    pub fn new(cpu: CpuPState, nb: NbState, gpu: GpuDpm, cu: CuCount) -> HwConfig {
        HwConfig { cpu, nb, gpu, cu }
    }

    /// Voltage of the shared GPU/NB rail in volts.
    ///
    /// The rail must satisfy both domains, so it runs at the maximum of the
    /// GPU's requested DPM voltage and the NB state's rail request. This is
    /// the coupling the paper describes in Section II-A: "higher NB states
    /// can prevent reducing the GPU's voltage along with the frequency".
    pub fn rail_voltage(self) -> f64 {
        self.gpu.voltage().max(self.nb.rail_request())
    }

    /// Size of the full dense configuration lattice
    /// (7 CPU × 4 NB × 5 GPU × 4 CU): every [`HwConfig::dense_index`] is
    /// below this bound, so it sizes dense per-configuration tables.
    pub const DENSE_COUNT: usize = 7 * 4 * 5 * 4;

    /// Dense index of this configuration in the full
    /// [`DENSE_COUNT`](HwConfig::DENSE_COUNT)-point lattice, row-major
    /// with CPU outermost.
    pub fn dense_index(self) -> usize {
        ((self.cpu.index() * 4 + self.nb.index()) * 5 + self.gpu.index()) * 4 + self.cu.index()
    }

    /// Inverse of [`HwConfig::dense_index`].
    ///
    /// Returns `None` when `idx >= DENSE_COUNT`.
    pub fn from_dense_index(idx: usize) -> Option<HwConfig> {
        if idx >= HwConfig::DENSE_COUNT {
            return None;
        }
        let cu = CuCount::from_index(idx % 4)?;
        let rest = idx / 4;
        let gpu = GpuDpm::from_index(rest % 5)?;
        let rest = rest / 5;
        let nb = NbState::from_index(rest % 4)?;
        let cpu = CpuPState::from_index(rest / 4)?;
        Some(HwConfig { cpu, nb, gpu, cu })
    }
}

impl Default for HwConfig {
    /// Defaults to the fail-safe configuration.
    fn default() -> HwConfig {
        HwConfig::FAIL_SAFE
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.cpu, self.nb, self.gpu, self.cu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cu_count_validation() {
        for n in [2u32, 4, 6, 8] {
            assert_eq!(CuCount::new(n).unwrap().get(), n);
        }
        for n in [0u32, 1, 3, 5, 7, 9, 16] {
            assert_eq!(CuCount::new(n), Err(CuCountError(n)));
        }
    }

    #[test]
    fn cu_count_error_display() {
        let msg = CuCountError(5).to_string();
        assert!(msg.contains('5'));
    }

    #[test]
    fn cu_count_steps() {
        assert_eq!(CuCount::MIN.fewer(), None);
        assert_eq!(CuCount::MAX.more(), None);
        assert_eq!(
            CuCount::new(4).unwrap().more(),
            Some(CuCount::new(6).unwrap())
        );
        assert_eq!(
            CuCount::new(4).unwrap().fewer(),
            Some(CuCount::new(2).unwrap())
        );
    }

    #[test]
    fn cu_count_conversions() {
        let cu = CuCount::try_from(8u32).unwrap();
        assert_eq!(u32::from(cu), 8);
    }

    #[test]
    fn cu_default_is_min() {
        assert_eq!(CuCount::default(), CuCount::MIN);
    }

    #[test]
    fn fail_safe_matches_paper() {
        let fs = HwConfig::FAIL_SAFE;
        assert_eq!(fs.cpu, CpuPState::P7);
        assert_eq!(fs.nb, NbState::Nb2);
        assert_eq!(fs.gpu, GpuDpm::Dpm4);
        assert_eq!(fs.cu.get(), 8);
    }

    #[test]
    fn mpc_host_matches_paper() {
        let h = HwConfig::MPC_HOST;
        assert_eq!(h.cpu, CpuPState::P5);
        assert_eq!(h.nb, NbState::Nb0);
        assert_eq!(h.gpu, GpuDpm::Dpm0);
        assert_eq!(h.cu.get(), 2);
    }

    #[test]
    fn rail_voltage_is_max_of_requests() {
        // Low GPU state, high NB state: NB dominates the rail.
        let c = HwConfig::new(CpuPState::P1, NbState::Nb0, GpuDpm::Dpm0, CuCount::MIN);
        assert_eq!(c.rail_voltage(), NbState::Nb0.rail_request());
        // High GPU state dominates any NB request.
        let c = HwConfig::new(CpuPState::P1, NbState::Nb3, GpuDpm::Dpm4, CuCount::MIN);
        assert_eq!(c.rail_voltage(), GpuDpm::Dpm4.voltage());
    }

    #[test]
    fn dense_index_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..560 {
            let cfg = HwConfig::from_dense_index(idx).unwrap();
            assert_eq!(cfg.dense_index(), idx);
            assert!(seen.insert(cfg));
        }
        assert_eq!(HwConfig::from_dense_index(560), None);
    }

    #[test]
    fn display_form() {
        assert_eq!(HwConfig::MAX_PERF.to_string(), "[P1, NB0, DPM4, 8 CUs]");
    }
}
