//! Hardware model of the AMD A10-7850K APU studied in the paper.
//!
//! This crate defines the *software-visible* power-management state of the
//! processor: CPU P-states, Northbridge (NB) states, GPU DVFS (DPM) states
//! (Table I of the paper), the number of active GPU compute units (CUs), and
//! the combined [`HwConfig`] a power governor may select between kernel
//! launches.
//!
//! It also captures two electrical couplings the paper's analysis relies on:
//!
//! * The GPU and NB share a voltage rail: the rail runs at the **maximum**
//!   of the voltages the two domains request ([`HwConfig::rail_voltage`]).
//!   A high NB state can therefore prevent the GPU voltage from dropping
//!   when the GPU DPM state is lowered.
//! * Each NB state maps to a specific memory bus frequency; NB2 through NB0
//!   share the same 800 MHz DRAM clock, while NB3 drops it to 333 MHz.
//!
//! # Examples
//!
//! ```
//! use gpm_hw::{CpuPState, NbState, GpuDpm, CuCount, HwConfig};
//!
//! let cfg = HwConfig::new(CpuPState::P5, NbState::Nb0, GpuDpm::Dpm0, CuCount::new(2)?);
//! // NB0 requests a higher rail voltage than DPM0, so the shared rail
//! // cannot drop to the GPU's 0.95 V request.
//! assert!(cfg.rail_voltage() > GpuDpm::Dpm0.voltage());
//! # Ok::<(), gpm_hw::CuCountError>(())
//! ```

pub mod config;
pub mod knob;
pub mod space;
pub mod states;

pub use config::{CuCount, CuCountError, HwConfig};
pub use knob::{Knob, KnobDirection};
pub use space::ConfigSpace;
pub use states::{CpuPState, GpuDpm, NbState};
