//! Enumerable configuration spaces.
//!
//! The paper's measurement campaign covers 336 configurations: all 7 CPU
//! P-states × 4 NB states × 3 of the 5 GPU DPM states × 4 CU counts
//! (Section V). Optimizers may also search the full 560-point lattice.

use crate::config::{CuCount, HwConfig};
use crate::states::{CpuPState, GpuDpm, NbState};
use serde::{Deserialize, Serialize};

/// A rectangular sub-lattice of hardware configurations.
///
/// # Examples
///
/// ```
/// use gpm_hw::ConfigSpace;
///
/// assert_eq!(ConfigSpace::paper_campaign().len(), 336);
/// assert_eq!(ConfigSpace::full().len(), 560);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    cpus: Vec<CpuPState>,
    nbs: Vec<NbState>,
    gpus: Vec<GpuDpm>,
    cus: Vec<CuCount>,
}

impl ConfigSpace {
    /// The 336-configuration space measured in the paper: every CPU and NB
    /// state, the three measured GPU DPM states, every CU count.
    pub fn paper_campaign() -> ConfigSpace {
        ConfigSpace {
            cpus: CpuPState::ALL.to_vec(),
            nbs: NbState::ALL.to_vec(),
            gpus: GpuDpm::MEASURED.to_vec(),
            cus: CuCount::ALL.to_vec(),
        }
    }

    /// The full 560-configuration lattice (all five GPU DPM states).
    pub fn full() -> ConfigSpace {
        ConfigSpace {
            cpus: CpuPState::ALL.to_vec(),
            nbs: NbState::ALL.to_vec(),
            gpus: GpuDpm::ALL.to_vec(),
            cus: CuCount::ALL.to_vec(),
        }
    }

    /// A custom space from explicit axis values.
    ///
    /// Empty axes yield an empty space rather than an error; iterating such
    /// a space produces no configurations.
    pub fn from_axes(
        cpus: Vec<CpuPState>,
        nbs: Vec<NbState>,
        gpus: Vec<GpuDpm>,
        cus: Vec<CuCount>,
    ) -> ConfigSpace {
        ConfigSpace {
            cpus,
            nbs,
            gpus,
            cus,
        }
    }

    /// The GPU-only sub-space of Figure 2's sweeps: NB states × CU counts at
    /// fixed CPU and GPU DPM settings.
    pub fn nb_cu_sweep(cpu: CpuPState, gpu: GpuDpm) -> ConfigSpace {
        ConfigSpace {
            cpus: vec![cpu],
            nbs: NbState::ALL.to_vec(),
            gpus: vec![gpu],
            cus: CuCount::ALL.to_vec(),
        }
    }

    /// Number of configurations in the space.
    pub fn len(&self) -> usize {
        self.cpus.len() * self.nbs.len() * self.gpus.len() * self.cus.len()
    }

    /// Whether the space contains no configurations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `cfg` lies within this space.
    pub fn contains(&self, cfg: HwConfig) -> bool {
        self.cpus.contains(&cfg.cpu)
            && self.nbs.contains(&cfg.nb)
            && self.gpus.contains(&cfg.gpu)
            && self.cus.contains(&cfg.cu)
    }

    /// Iterates every configuration in the space, CPU-major order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            space: self,
            next: 0,
        }
    }

    /// CPU axis values.
    pub fn cpus(&self) -> &[CpuPState] {
        &self.cpus
    }

    /// NB axis values.
    pub fn nbs(&self) -> &[NbState] {
        &self.nbs
    }

    /// GPU DPM axis values.
    pub fn gpus(&self) -> &[GpuDpm] {
        &self.gpus
    }

    /// CU-count axis values.
    pub fn cus(&self) -> &[CuCount] {
        &self.cus
    }
}

/// Iterator over the configurations of a [`ConfigSpace`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    space: &'a ConfigSpace,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = HwConfig;

    fn next(&mut self) -> Option<HwConfig> {
        let s = self.space;
        if self.next >= s.len() {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        let cu = s.cus[idx % s.cus.len()];
        let rest = idx / s.cus.len();
        let gpu = s.gpus[rest % s.gpus.len()];
        let rest = rest / s.gpus.len();
        let nb = s.nbs[rest % s.nbs.len()];
        let cpu = s.cpus[rest / s.nbs.len()];
        Some(HwConfig { cpu, nb, gpu, cu })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.space.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a ConfigSpace {
    type Item = HwConfig;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_campaign_is_336() {
        let space = ConfigSpace::paper_campaign();
        assert_eq!(space.len(), 336);
        assert_eq!(space.iter().count(), 336);
    }

    #[test]
    fn full_space_is_560() {
        let space = ConfigSpace::full();
        assert_eq!(space.len(), 560);
        assert_eq!(space.iter().count(), 560);
    }

    #[test]
    fn iteration_yields_distinct_configs() {
        let space = ConfigSpace::paper_campaign();
        let set: HashSet<HwConfig> = space.iter().collect();
        assert_eq!(set.len(), 336);
    }

    #[test]
    fn contains_matches_iteration() {
        let space = ConfigSpace::paper_campaign();
        for cfg in &space {
            assert!(space.contains(cfg));
        }
        // DPM1 is not in the measured campaign.
        let mut odd = HwConfig::FAIL_SAFE;
        odd.gpu = GpuDpm::Dpm1;
        assert!(!space.contains(odd));
        assert!(ConfigSpace::full().contains(odd));
    }

    #[test]
    fn nb_cu_sweep_is_sixteen_points() {
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        assert_eq!(space.len(), 16);
        for cfg in &space {
            assert_eq!(cfg.cpu, CpuPState::P5);
            assert_eq!(cfg.gpu, GpuDpm::Dpm4);
        }
    }

    #[test]
    fn empty_axis_means_empty_space() {
        let space = ConfigSpace::from_axes(
            vec![],
            NbState::ALL.to_vec(),
            GpuDpm::ALL.to_vec(),
            CuCount::ALL.to_vec(),
        );
        assert!(space.is_empty());
        assert_eq!(space.iter().count(), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let space = ConfigSpace::paper_campaign();
        let mut it = space.iter();
        assert_eq!(it.size_hint(), (336, Some(336)));
        it.next();
        assert_eq!(it.size_hint(), (335, Some(335)));
    }

    #[test]
    fn fail_safe_in_measured_campaign() {
        assert!(ConfigSpace::paper_campaign().contains(HwConfig::FAIL_SAFE));
    }
}
