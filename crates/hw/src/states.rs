//! DVFS state tables for the AMD A10-7850K (Table I of the paper).
//!
//! Three independent state machines are exposed to software:
//!
//! * [`CpuPState`]: seven CPU P-states, P1 (fastest) through P7 (slowest).
//!   All CPU cores share one power plane.
//! * [`NbState`]: four Northbridge states. Each maps to an NB clock *and* a
//!   memory bus frequency; NB0–NB2 share the 800 MHz DRAM clock.
//! * [`GpuDpm`]: five GPU DPM states, DPM0 (slowest) through DPM4 (fastest).
//!
//! Voltages and frequencies are exactly the values printed in Table I. The
//! per-NB-state rail voltage requirement is not listed in the paper; we use
//! a monotone table consistent with the paper's observation that high NB
//! states prevent the shared GPU/NB rail from dropping (Section II-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// CPU P-states of the A10-7850K, P1 (3.9 GHz) down to P7 (1.7 GHz).
///
/// Lower-numbered states are faster and higher-voltage. The paper's fail-safe
/// configuration uses [`CpuPState::P7`] because the CPU busy-waits during GPU
/// kernel execution and contributes little to kernel throughput.
///
/// # Examples
///
/// ```
/// use gpm_hw::CpuPState;
/// assert_eq!(CpuPState::P1.freq_ghz(), 3.9);
/// assert!(CpuPState::P7.voltage() < CpuPState::P1.voltage());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpuPState {
    /// 1.325 V, 3.9 GHz.
    P1,
    /// 1.3125 V, 3.8 GHz.
    P2,
    /// 1.2625 V, 3.7 GHz.
    P3,
    /// 1.225 V, 3.5 GHz.
    P4,
    /// 1.0625 V, 3.0 GHz.
    P5,
    /// 0.975 V, 2.4 GHz.
    P6,
    /// 0.8875 V, 1.7 GHz.
    P7,
}

impl CpuPState {
    /// All CPU P-states, fastest first.
    pub const ALL: [CpuPState; 7] = [
        CpuPState::P1,
        CpuPState::P2,
        CpuPState::P3,
        CpuPState::P4,
        CpuPState::P5,
        CpuPState::P6,
        CpuPState::P7,
    ];

    /// Core voltage in volts (Table I).
    pub fn voltage(self) -> f64 {
        match self {
            CpuPState::P1 => 1.325,
            CpuPState::P2 => 1.3125,
            CpuPState::P3 => 1.2625,
            CpuPState::P4 => 1.225,
            CpuPState::P5 => 1.0625,
            CpuPState::P6 => 0.975,
            CpuPState::P7 => 0.8875,
        }
    }

    /// Core clock in GHz (Table I).
    pub fn freq_ghz(self) -> f64 {
        match self {
            CpuPState::P1 => 3.9,
            CpuPState::P2 => 3.8,
            CpuPState::P3 => 3.7,
            CpuPState::P4 => 3.5,
            CpuPState::P5 => 3.0,
            CpuPState::P6 => 2.4,
            CpuPState::P7 => 1.7,
        }
    }

    /// Zero-based index with `P1 == 0`, suitable for table lookups.
    pub fn index(self) -> usize {
        match self {
            CpuPState::P1 => 0,
            CpuPState::P2 => 1,
            CpuPState::P3 => 2,
            CpuPState::P4 => 3,
            CpuPState::P5 => 4,
            CpuPState::P6 => 5,
            CpuPState::P7 => 6,
        }
    }

    /// Inverse of [`CpuPState::index`].
    ///
    /// Returns `None` when `idx >= 7`.
    pub fn from_index(idx: usize) -> Option<CpuPState> {
        CpuPState::ALL.get(idx).copied()
    }

    /// The next-faster P-state, or `None` when already at P1.
    pub fn faster(self) -> Option<CpuPState> {
        self.index().checked_sub(1).and_then(CpuPState::from_index)
    }

    /// The next-slower P-state, or `None` when already at P7.
    pub fn slower(self) -> Option<CpuPState> {
        CpuPState::from_index(self.index() + 1)
    }

    /// Normalized dynamic-power proxy `V^2 * f` relative to P1.
    ///
    /// The paper predicts CPU power with a normalized `V^2 f` model because
    /// the CPU busy-waits during kernel execution (Section IV-A3).
    pub fn v2f_rel(self) -> f64 {
        let p1 = CpuPState::P1;
        (self.voltage() * self.voltage() * self.freq_ghz())
            / (p1.voltage() * p1.voltage() * p1.freq_ghz())
    }
}

impl fmt::Display for CpuPState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.index() + 1)
    }
}

/// Northbridge states of the A10-7850K, NB0 (fastest) through NB3.
///
/// The NB state controls both the on-chip northbridge/interconnect clock and
/// the memory bus frequency (Table I). NB0–NB2 share the 800 MHz DRAM clock,
/// so DRAM bandwidth saturates from NB2 onwards — the effect behind the
/// memory-bound plateau of Figure 2(b).
///
/// # Examples
///
/// ```
/// use gpm_hw::NbState;
/// assert_eq!(NbState::Nb0.mem_freq_mhz(), 800.0);
/// assert_eq!(NbState::Nb3.mem_freq_mhz(), 333.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NbState {
    /// 1.8 GHz NB clock, 800 MHz memory.
    Nb0,
    /// 1.6 GHz NB clock, 800 MHz memory.
    Nb1,
    /// 1.4 GHz NB clock, 800 MHz memory.
    Nb2,
    /// 1.1 GHz NB clock, 333 MHz memory.
    Nb3,
}

impl NbState {
    /// All NB states, fastest first.
    pub const ALL: [NbState; 4] = [NbState::Nb0, NbState::Nb1, NbState::Nb2, NbState::Nb3];

    /// Northbridge clock in GHz (Table I).
    pub fn freq_ghz(self) -> f64 {
        match self {
            NbState::Nb0 => 1.8,
            NbState::Nb1 => 1.6,
            NbState::Nb2 => 1.4,
            NbState::Nb3 => 1.1,
        }
    }

    /// Memory bus frequency in MHz (Table I).
    pub fn mem_freq_mhz(self) -> f64 {
        match self {
            NbState::Nb0 | NbState::Nb1 | NbState::Nb2 => 800.0,
            NbState::Nb3 => 333.0,
        }
    }

    /// Voltage the NB domain requests from the shared GPU/NB rail, in volts.
    ///
    /// Not listed in Table I; chosen monotone in NB clock and consistent with
    /// the paper's statement that a high NB state can keep the shared rail
    /// above the GPU's requested voltage.
    pub fn rail_request(self) -> f64 {
        match self {
            NbState::Nb0 => 1.175,
            NbState::Nb1 => 1.1125,
            NbState::Nb2 => 1.05,
            NbState::Nb3 => 0.95,
        }
    }

    /// Zero-based index with `Nb0 == 0`.
    pub fn index(self) -> usize {
        match self {
            NbState::Nb0 => 0,
            NbState::Nb1 => 1,
            NbState::Nb2 => 2,
            NbState::Nb3 => 3,
        }
    }

    /// Inverse of [`NbState::index`]. Returns `None` when `idx >= 4`.
    pub fn from_index(idx: usize) -> Option<NbState> {
        NbState::ALL.get(idx).copied()
    }

    /// The next-faster NB state, or `None` when already at NB0.
    pub fn faster(self) -> Option<NbState> {
        self.index().checked_sub(1).and_then(NbState::from_index)
    }

    /// The next-slower NB state, or `None` when already at NB3.
    pub fn slower(self) -> Option<NbState> {
        NbState::from_index(self.index() + 1)
    }
}

impl fmt::Display for NbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NB{}", self.index())
    }
}

/// GPU DPM (DVFS) states of the A10-7850K, DPM0 (slowest) through DPM4.
///
/// Unlike [`CpuPState`] and [`NbState`], higher-numbered DPM states are
/// *faster*. The GPU shares its voltage rail with the NB; the voltage below
/// is what the GPU *requests*, the rail runs at the maximum of the GPU and
/// NB requests (see [`HwConfig::rail_voltage`](crate::HwConfig::rail_voltage)).
///
/// # Examples
///
/// ```
/// use gpm_hw::GpuDpm;
/// assert!(GpuDpm::Dpm4.freq_mhz() > GpuDpm::Dpm0.freq_mhz());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuDpm {
    /// 0.95 V, 351 MHz.
    Dpm0,
    /// 1.05 V, 450 MHz.
    Dpm1,
    /// 1.125 V, 553 MHz.
    Dpm2,
    /// 1.1875 V, 654 MHz.
    Dpm3,
    /// 1.225 V, 720 MHz.
    Dpm4,
}

impl GpuDpm {
    /// All GPU DPM states, slowest first.
    pub const ALL: [GpuDpm; 5] = [
        GpuDpm::Dpm0,
        GpuDpm::Dpm1,
        GpuDpm::Dpm2,
        GpuDpm::Dpm3,
        GpuDpm::Dpm4,
    ];

    /// The three DPM states measured in the paper's 336-configuration
    /// campaign ("three out of five GPU DVFS states", Section V).
    pub const MEASURED: [GpuDpm; 3] = [GpuDpm::Dpm0, GpuDpm::Dpm2, GpuDpm::Dpm4];

    /// Requested GPU voltage in volts (Table I).
    pub fn voltage(self) -> f64 {
        match self {
            GpuDpm::Dpm0 => 0.95,
            GpuDpm::Dpm1 => 1.05,
            GpuDpm::Dpm2 => 1.125,
            GpuDpm::Dpm3 => 1.1875,
            GpuDpm::Dpm4 => 1.225,
        }
    }

    /// GPU core clock in MHz (Table I).
    pub fn freq_mhz(self) -> f64 {
        match self {
            GpuDpm::Dpm0 => 351.0,
            GpuDpm::Dpm1 => 450.0,
            GpuDpm::Dpm2 => 553.0,
            GpuDpm::Dpm3 => 654.0,
            GpuDpm::Dpm4 => 720.0,
        }
    }

    /// Zero-based index with `Dpm0 == 0`.
    pub fn index(self) -> usize {
        match self {
            GpuDpm::Dpm0 => 0,
            GpuDpm::Dpm1 => 1,
            GpuDpm::Dpm2 => 2,
            GpuDpm::Dpm3 => 3,
            GpuDpm::Dpm4 => 4,
        }
    }

    /// Inverse of [`GpuDpm::index`]. Returns `None` when `idx >= 5`.
    pub fn from_index(idx: usize) -> Option<GpuDpm> {
        GpuDpm::ALL.get(idx).copied()
    }

    /// The next-faster DPM state, or `None` when already at DPM4.
    pub fn faster(self) -> Option<GpuDpm> {
        GpuDpm::from_index(self.index() + 1)
    }

    /// The next-slower DPM state, or `None` when already at DPM0.
    pub fn slower(self) -> Option<GpuDpm> {
        self.index().checked_sub(1).and_then(GpuDpm::from_index)
    }
}

impl fmt::Display for GpuDpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DPM{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_table_matches_paper() {
        assert_eq!(CpuPState::P1.voltage(), 1.325);
        assert_eq!(CpuPState::P1.freq_ghz(), 3.9);
        assert_eq!(CpuPState::P4.voltage(), 1.225);
        assert_eq!(CpuPState::P4.freq_ghz(), 3.5);
        assert_eq!(CpuPState::P7.voltage(), 0.8875);
        assert_eq!(CpuPState::P7.freq_ghz(), 1.7);
    }

    #[test]
    fn cpu_voltage_and_freq_monotone() {
        for w in CpuPState::ALL.windows(2) {
            assert!(w[0].voltage() >= w[1].voltage(), "{} vs {}", w[0], w[1]);
            assert!(w[0].freq_ghz() > w[1].freq_ghz());
        }
    }

    #[test]
    fn cpu_index_roundtrip() {
        for s in CpuPState::ALL {
            assert_eq!(CpuPState::from_index(s.index()), Some(s));
        }
        assert_eq!(CpuPState::from_index(7), None);
    }

    #[test]
    fn cpu_faster_slower_chain() {
        assert_eq!(CpuPState::P1.faster(), None);
        assert_eq!(CpuPState::P7.slower(), None);
        assert_eq!(CpuPState::P3.faster(), Some(CpuPState::P2));
        assert_eq!(CpuPState::P3.slower(), Some(CpuPState::P4));
    }

    #[test]
    fn cpu_v2f_rel_bounds() {
        assert!((CpuPState::P1.v2f_rel() - 1.0).abs() < 1e-12);
        for s in CpuPState::ALL {
            assert!(s.v2f_rel() <= 1.0 && s.v2f_rel() > 0.0);
        }
    }

    #[test]
    fn nb_table_matches_paper() {
        assert_eq!(NbState::Nb0.freq_ghz(), 1.8);
        assert_eq!(NbState::Nb1.freq_ghz(), 1.6);
        assert_eq!(NbState::Nb2.freq_ghz(), 1.4);
        assert_eq!(NbState::Nb3.freq_ghz(), 1.1);
        assert_eq!(NbState::Nb2.mem_freq_mhz(), 800.0);
        assert_eq!(NbState::Nb3.mem_freq_mhz(), 333.0);
    }

    #[test]
    fn nb_rail_request_monotone() {
        for w in NbState::ALL.windows(2) {
            assert!(w[0].rail_request() > w[1].rail_request());
        }
    }

    #[test]
    fn nb_index_roundtrip_and_steps() {
        for s in NbState::ALL {
            assert_eq!(NbState::from_index(s.index()), Some(s));
        }
        assert_eq!(NbState::Nb0.faster(), None);
        assert_eq!(NbState::Nb3.slower(), None);
        assert_eq!(NbState::Nb1.faster(), Some(NbState::Nb0));
        assert_eq!(NbState::Nb1.slower(), Some(NbState::Nb2));
    }

    #[test]
    fn gpu_table_matches_paper() {
        assert_eq!(GpuDpm::Dpm0.voltage(), 0.95);
        assert_eq!(GpuDpm::Dpm0.freq_mhz(), 351.0);
        assert_eq!(GpuDpm::Dpm2.freq_mhz(), 553.0);
        assert_eq!(GpuDpm::Dpm4.voltage(), 1.225);
        assert_eq!(GpuDpm::Dpm4.freq_mhz(), 720.0);
    }

    #[test]
    fn gpu_voltage_freq_monotone_increasing() {
        for w in GpuDpm::ALL.windows(2) {
            assert!(w[1].voltage() > w[0].voltage());
            assert!(w[1].freq_mhz() > w[0].freq_mhz());
        }
    }

    #[test]
    fn gpu_measured_subset() {
        assert_eq!(GpuDpm::MEASURED.len(), 3);
        for s in GpuDpm::MEASURED {
            assert!(GpuDpm::ALL.contains(&s));
        }
    }

    #[test]
    fn gpu_faster_slower_chain() {
        assert_eq!(GpuDpm::Dpm4.faster(), None);
        assert_eq!(GpuDpm::Dpm0.slower(), None);
        assert_eq!(GpuDpm::Dpm2.faster(), Some(GpuDpm::Dpm3));
        assert_eq!(GpuDpm::Dpm2.slower(), Some(GpuDpm::Dpm1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CpuPState::P5.to_string(), "P5");
        assert_eq!(NbState::Nb2.to_string(), "NB2");
        assert_eq!(GpuDpm::Dpm4.to_string(), "DPM4");
    }
}
