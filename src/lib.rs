//! # gpm — Dynamic GPGPU Power Management Using Adaptive MPC
//!
//! A full reproduction of *"Dynamic GPGPU Power Management Using Adaptive
//! Model Predictive Control"* (HPCA 2017) as a Rust workspace: an
//! analytical APU simulator standing in for the paper's AMD A10-7850K
//! testbed, the MPC power governor itself, every baseline it is compared
//! against, the 15-benchmark workload suite, and a harness that
//! regenerates every table and figure of the evaluation.
//!
//! This crate is a facade: it re-exports the workspace's sub-crates under
//! one name so applications can depend on a single package.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hw`] | `gpm-hw` | DVFS state tables (Table I), [`hw::HwConfig`], config spaces |
//! | [`sim`] | `gpm-sim` | the APU simulator, kernel model, counters |
//! | [`model`] | `gpm-model` | Random Forest predictor, error models |
//! | [`pattern`] | `gpm-pattern` | kernel signatures and pattern extraction |
//! | [`governors`] | `gpm-governors` | Turbo Core, PPK, Theoretically Optimal |
//! | [`mpc`] | `gpm-mpc` | **the adaptive-MPC governor (the contribution)** |
//! | [`workloads`] | `gpm-workloads` | the 15 Table IV benchmarks |
//! | [`harness`] | `gpm-harness` | experiment runner, comparisons, reports |
//! | [`trace`] | `gpm-trace` | decision-level observability events and sinks |
//! | [`telemetry`] | `gpm-telemetry` | metrics registry, span profiler, Prometheus/chrome-trace/flamegraph exporters |
//! | [`faults`] | `gpm-faults` | deterministic fault injection (robustness studies) |
//! | [`fleet`] | `gpm-fleet` | sharded multi-device fleet service and scenario DSL |
//!
//! # Quickstart
//!
//! Evaluate MPC against Turbo Core on one benchmark (see
//! `examples/quickstart.rs` for the full program):
//!
//! ```no_run
//! use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
//! use gpm::harness::metrics::Comparison;
//! use gpm::mpc::HorizonMode;
//! use gpm::workloads::workload_by_name;
//!
//! let ctx = EvalContext::build(EvalOptions::default());
//! let kmeans = workload_by_name("kmeans").unwrap();
//! let env = ExecEnv::new();
//! let out = env.evaluate(&ctx, &kmeans, Scheme::MpcRf { horizon: HorizonMode::default() });
//! let c = Comparison::between(&out.baseline, &out.measured);
//! println!("energy savings {:.1}%, speedup {:.3}", c.energy_savings_pct, c.speedup);
//! ```

pub use gpm_faults as faults;
pub use gpm_fleet as fleet;
pub use gpm_governors as governors;
pub use gpm_harness as harness;
pub use gpm_hw as hw;
pub use gpm_model as model;
pub use gpm_mpc as mpc;
pub use gpm_pattern as pattern;
pub use gpm_sim as sim;
pub use gpm_telemetry as telemetry;
pub use gpm_trace as trace;
pub use gpm_workloads as workloads;
