//! `gpm` — command-line front end to the reproduction.
//!
//! ```text
//! gpm list                               # the 15-benchmark suite
//! gpm schemes                            # available power-management schemes
//! gpm run --workload kmeans --scheme mpc [--fast] [--json]
//! gpm sweep --kernel peak                # Figure 2-style NB×CU sweep
//! gpm trace --workload Spmv              # Figure 3 throughput trace
//! gpm accuracy [--fast]                  # Random-Forest accuracy report
//! ```
//!
//! Argument parsing is deliberately dependency-free; outputs are aligned
//! tables or (`--json`) machine-readable JSON.

use gpm::governors::EqualizerMode;
use gpm::harness::metrics::Comparison;
use gpm::harness::report::{fmt, Table};
use gpm::harness::traces::{fig2_sweep, fig3_trace};
use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::model::ErrorSpec;
use gpm::mpc::HorizonMode;
use gpm::sim::ApuSimulator;
use gpm::workloads::{
    astar, max_flops, read_global_memory_coalesced, suite, workload_by_name, write_candidates,
};
use serde::Serialize;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
gpm — Dynamic GPGPU Power Management Using Adaptive MPC (HPCA'17 reproduction)

USAGE:
  gpm list                                     list the benchmark suite
  gpm schemes                                  list available schemes
  gpm run --workload <NAME> --scheme <SCHEME>  evaluate a scheme vs Turbo Core
          [--fast] [--json] [--cache <FILE>]
  gpm sweep --kernel <compute|memory|peak|unscalable>
  gpm trace --workload <NAME>                  normalized throughput trace
  gpm accuracy [--fast]                        predictor accuracy report
  gpm help                                     this text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match command {
        "list" => cmd_list(),
        "schemes" => cmd_schemes(),
        "run" => return cmd_run(&flags),
        "sweep" => return cmd_sweep(&flags),
        "trace" => return cmd_trace(&flags),
        "accuracy" => cmd_accuracy(&flags),
        "help" | "--help" | "-h" => print!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n");
            print!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--key value` and bare `--flag` arguments.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if value != "true" {
                i += 1;
            }
            flags.insert(key.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    Some(match name {
        "turbo-core" | "turbocore" => Scheme::TurboCore,
        "ppk" => Scheme::PpkRf,
        "ppk-oracle" => Scheme::PpkOracle,
        "mpc" => Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        "mpc-full" => Scheme::MpcRf {
            horizon: HorizonMode::Full,
        },
        "mpc-oracle" => Scheme::MpcOracle,
        "mpc-err15" => Scheme::MpcError {
            spec: ErrorSpec::ERR_15_10,
        },
        "to" | "optimal" => Scheme::TheoreticallyOptimal,
        "equalizer-perf" => Scheme::Equalizer {
            mode: EqualizerMode::Performance,
        },
        "equalizer-eff" => Scheme::Equalizer {
            mode: EqualizerMode::Efficiency,
        },
        _ => return None,
    })
}

fn cmd_list() {
    let mut table = Table::new(vec!["benchmark", "category", "pattern", "kernels"]);
    for w in suite() {
        table.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            w.pattern().to_string(),
            w.len().to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn cmd_schemes() {
    println!("turbo-core     AMD Turbo Core (the baseline)");
    println!("ppk            Predict Previous Kernel, Random-Forest prediction");
    println!("ppk-oracle     PPK with perfect prediction (limit study)");
    println!("mpc            adaptive-horizon MPC, Random Forest (the paper's system)");
    println!("mpc-full       MPC with the full horizon");
    println!("mpc-oracle     MPC with perfect prediction, full horizon, no overhead");
    println!("mpc-err15      MPC with 15%/10% half-normal prediction error");
    println!("to             Theoretically Optimal offline solution");
    println!("equalizer-perf reactive Equalizer, performance mode");
    println!("equalizer-eff  reactive Equalizer, efficiency mode");
}

#[derive(Serialize)]
struct RunReport {
    workload: String,
    scheme: String,
    baseline_energy_j: f64,
    baseline_wall_s: f64,
    scheme_energy_j: f64,
    scheme_wall_s: f64,
    energy_savings_pct: f64,
    gpu_energy_savings_pct: f64,
    speedup: f64,
    average_horizon: Option<f64>,
    predictor_evaluations: Option<u64>,
}

fn cmd_run(flags: &HashMap<String, String>) -> ExitCode {
    let Some(workload_name) = flags.get("workload") else {
        eprintln!("run requires --workload <NAME> (see `gpm list`)");
        return ExitCode::FAILURE;
    };
    let Some(scheme_name) = flags.get("scheme") else {
        eprintln!("run requires --scheme <SCHEME> (see `gpm schemes`)");
        return ExitCode::FAILURE;
    };
    let Some(workload) = workload_by_name(workload_name) else {
        eprintln!("unknown workload `{workload_name}` (see `gpm list`)");
        return ExitCode::FAILURE;
    };
    let Some(scheme) = parse_scheme(scheme_name) else {
        eprintln!("unknown scheme `{scheme_name}` (see `gpm schemes`)");
        return ExitCode::FAILURE;
    };

    // `--cache FILE`: reuse a previously trained predictor when present,
    // train and persist it otherwise.
    let ctx = match flags.get("cache") {
        Some(path) if std::path::Path::new(path).exists() => {
            eprintln!("loading trained predictor from {path} ...");
            match EvalContext::load(path) {
                Ok(ctx) => ctx,
                Err(e) => {
                    eprintln!("cannot load {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        cache => {
            let options = if flags.contains_key("fast") {
                EvalOptions::fast()
            } else {
                EvalOptions::default()
            };
            eprintln!(
                "training predictor ({} mode) ...",
                if flags.contains_key("fast") {
                    "fast"
                } else {
                    "full"
                }
            );
            let ctx = EvalContext::build(options);
            if let Some(path) = cache {
                if let Err(e) = ctx.save(path) {
                    eprintln!("warning: cannot save cache {path}: {e}");
                } else {
                    eprintln!("saved trained predictor to {path}");
                }
            }
            ctx
        }
    };
    let out = ExecEnv::new().evaluate(&ctx, &workload, scheme);
    let c = Comparison::between(&out.baseline, &out.measured);

    let report = RunReport {
        workload: workload.name().to_string(),
        scheme: out.label.to_string(),
        baseline_energy_j: out.baseline.total_energy_j(),
        baseline_wall_s: out.baseline.wall_time_s(),
        scheme_energy_j: out.measured.total_energy_j(),
        scheme_wall_s: out.measured.wall_time_s(),
        energy_savings_pct: c.energy_savings_pct,
        gpu_energy_savings_pct: c.gpu_energy_savings_pct,
        speedup: c.speedup,
        average_horizon: out.mpc_stats.as_ref().map(|s| s.average_horizon()),
        predictor_evaluations: out.mpc_stats.as_ref().map(|s| s.total_evaluations()),
    };

    if flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        println!("{} on {}", report.scheme, report.workload);
        println!(
            "  baseline : {:>8.2} J  {:>8.1} ms",
            report.baseline_energy_j,
            report.baseline_wall_s * 1e3
        );
        println!(
            "  scheme   : {:>8.2} J  {:>8.1} ms",
            report.scheme_energy_j,
            report.scheme_wall_s * 1e3
        );
        println!(
            "  energy savings {:+.1}% (GPU {:+.1}%), speedup {:.3}",
            report.energy_savings_pct, report.gpu_energy_savings_pct, report.speedup
        );
        if let Some(h) = report.average_horizon {
            println!(
                "  average horizon {:.1}, {} predictor evaluations",
                h,
                report.predictor_evaluations.unwrap_or(0)
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(flags: &HashMap<String, String>) -> ExitCode {
    let kernel = match flags.get("kernel").map(String::as_str) {
        Some("compute") => max_flops(),
        Some("memory") => read_global_memory_coalesced(),
        Some("peak") => write_candidates(),
        Some("unscalable") => astar(),
        other => {
            eprintln!("sweep requires --kernel <compute|memory|peak|unscalable>, got {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let sim = ApuSimulator::default();
    let mut table = Table::new(vec!["NB", "CUs", "speedup", "energy (J)", "optimal"]);
    for p in fig2_sweep(&sim, &kernel) {
        table.row(vec![
            p.nb.to_string(),
            p.cu.to_string(),
            fmt(p.speedup, 2),
            fmt(p.energy_j, 3),
            if p.energy_optimal {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("{kernel}");
    println!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_trace(flags: &HashMap<String, String>) -> ExitCode {
    let Some(name) = flags.get("workload") else {
        eprintln!("trace requires --workload <NAME>");
        return ExitCode::FAILURE;
    };
    let Some(w) = workload_by_name(name) else {
        eprintln!("unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let sim = ApuSimulator::default();
    for (i, v) in fig3_trace(&sim, &w).iter().enumerate() {
        let bar = "#".repeat((v * 12.0).round().clamp(0.0, 60.0) as usize);
        println!("{:>3}  {:>6.2}  {}", i + 1, v, bar);
    }
    ExitCode::SUCCESS
}

fn cmd_accuracy(flags: &HashMap<String, String>) {
    let options = if flags.contains_key("fast") {
        EvalOptions::fast()
    } else {
        EvalOptions::default()
    };
    let ctx = EvalContext::build(options);
    println!(
        "Random Forest held-out accuracy: time MAPE {:.1}%, power MAPE {:.1}%",
        ctx.rf_report.time_mape * 100.0,
        ctx.rf_report.power_mape * 100.0
    );
    println!(
        "R²: time {:.3}, power {:.3} ({} train / {} test samples)",
        ctx.rf_report.time_r2,
        ctx.rf_report.power_r2,
        ctx.rf_report.train_samples,
        ctx.rf_report.test_samples
    );
    println!("(the paper reports 25% performance MAPE and 12% power MAPE, Section VI-D)");
}
